"""Per-message measurement records.

The paper's receiving program "dumped [sending and receiving time, etc]
into a local text file for later analysis" (§III.B); a :class:`RecordBook`
is that log file.  Each message carries four timestamps matching Fig 15's
phase boundaries:

* ``t_before_send`` — the application called publish/insert;
* ``t_after_send``  — the publish/insert call returned (end of PRT);
* ``t_arrived``     — the receiving runtime got the message off the wire /
  started the receiving operation (start of SRT);
* ``t_received``    — the application's listener/poll saw the message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np


@dataclass
class MessageRecord:
    """One monitored message's life."""

    gen_id: int
    seq: int
    t_before_send: float
    t_after_send: Optional[float] = None
    t_arrived: Optional[float] = None
    t_received: Optional[float] = None

    @property
    def delivered(self) -> bool:
        return self.t_received is not None

    @property
    def rtt(self) -> float:
        """Round-trip time: sending to receiving (paper §III.C)."""
        if self.t_received is None:
            raise ValueError("message was not delivered")
        return self.t_received - self.t_before_send

    @property
    def prt(self) -> float:
        """Publishing Response Time (paper §III.F.2)."""
        if self.t_after_send is None:
            raise ValueError("send never completed")
        return self.t_after_send - self.t_before_send

    @property
    def srt(self) -> float:
        """Subscribing Response Time."""
        if self.t_received is None or self.t_arrived is None:
            raise ValueError("message was not received")
        return self.t_received - self.t_arrived

    @property
    def pt(self) -> float:
        """Process Time: RTT = PRT + PT + SRT."""
        return self.rtt - self.prt - self.srt


class RecordBook:
    """Accumulates records during a run; the analysis input."""

    def __init__(self) -> None:
        self.records: list[MessageRecord] = []

    def new_record(self, gen_id: int, seq: int, t_before_send: float) -> MessageRecord:
        record = MessageRecord(gen_id=gen_id, seq=seq, t_before_send=t_before_send)
        self.records.append(record)
        return record

    # ------------------------------------------------------------- queries
    @property
    def sent_count(self) -> int:
        return len(self.records)

    @property
    def received_count(self) -> int:
        return sum(1 for r in self.records if r.delivered)

    def delivered(self) -> list[MessageRecord]:
        return [r for r in self.records if r.delivered]

    def rtts(self, since: float = 0.0) -> np.ndarray:
        """RTTs (seconds) of delivered messages sent at/after ``since``."""
        return np.array(
            [r.rtt for r in self.records if r.delivered and r.t_before_send >= since],
            dtype=float,
        )

    def after(self, since: float) -> "RecordBook":
        """A view restricted to messages sent at/after ``since`` (warm-up cut)."""
        book = RecordBook()
        book.records = [r for r in self.records if r.t_before_send >= since]
        return book

    def merge(self, other: "RecordBook") -> None:
        self.records.extend(other.records)

    def __len__(self) -> int:
        return len(self.records)
