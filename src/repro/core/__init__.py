"""Measurement core: records, metrics, experiment plumbing, reporting.

Implements the paper's §III.C performance metrics exactly: Round-Trip Time
(mean of per-message round trips), RTT variation (standard deviation),
percentile of RTT, loss rate — plus the §III.F.2 decomposition
``RTT = PRT + PT + SRT`` and the qualitative rating derivation behind
Table III.
"""

from repro.core.dedup import DedupIndex
from repro.core.records import MessageRecord, RecordBook
from repro.core.metrics import (
    PhaseBreakdown,
    RttStats,
    decompose,
    loss_rate,
    percentile_curve,
    rtt_stats,
)
from repro.core.experiment import ExperimentResult, SeriesPoint
from repro.core.report import render_series, render_table
from repro.core.comparison import Rating, rate_middleware, table_iii

__all__ = [
    "DedupIndex",
    "ExperimentResult",
    "MessageRecord",
    "PhaseBreakdown",
    "Rating",
    "RecordBook",
    "RttStats",
    "SeriesPoint",
    "decompose",
    "loss_rate",
    "percentile_curve",
    "rate_middleware",
    "render_series",
    "render_table",
    "rtt_stats",
    "table_iii",
]
