"""Deriving the paper's Table III qualitative comparison from measurements.

Table III rates R-GMA and NaradaBrokering on three axes — real-time
performance, concurrent connections & throughput, and scalability — as
"Average" / "Very good".  Rather than hard-coding the verdicts, this module
derives them from measured quantities with explicit thresholds, so the
table regenerates from the benchmark data (and would change if the model
stopped reproducing the paper's behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional


class Rating(str, Enum):
    POOR = "Poor"
    AVERAGE = "Average"
    GOOD = "Good"
    VERY_GOOD = "Very good"


@dataclass(frozen=True)
class MiddlewareMeasurements:
    """Inputs to the rating: read off the scaling experiments."""

    name: str
    #: Mean RTT (ms) at the light-load comparison point (~800 connections).
    rtt_ms_light: float
    #: Highest connection count a single server sustained.
    max_connections_single: int
    #: Highest connection count the distributed deployment sustained.
    max_connections_distributed: int
    #: Mean RTT ratio distributed/single at a common connection count
    #: (< 1 means the distributed deployment is faster).
    distributed_rtt_ratio: float
    #: CPU idle ratio distributed/single (> 1 means distribution sheds load).
    distributed_idle_ratio: float


def rate_realtime(rtt_ms: float) -> Rating:
    """Real-time performance from light-load mean RTT.

    The §I requirement is delivery within seconds; millisecond RTT is
    headroom of 100x ("Very good"), sub-second is workable ("Average").
    """
    if rtt_ms < 50:
        return Rating.VERY_GOOD
    if rtt_ms < 500:
        return Rating.GOOD
    if rtt_ms < 5000:
        return Rating.AVERAGE
    return Rating.POOR


def rate_concurrency(max_single: int) -> Rating:
    """Concurrent connections & throughput from the single-server wall."""
    if max_single >= 2000:
        return Rating.VERY_GOOD
    if max_single >= 1000:
        return Rating.GOOD
    if max_single >= 400:
        return Rating.AVERAGE
    return Rating.POOR


def rate_scalability(
    distributed_rtt_ratio: float,
    distributed_idle_ratio: float,
    connection_gain: float,
) -> Rating:
    """Scalability: does distributing help latency, load and capacity?

    Narada's v1.1.3 DBN is the cautionary case: capacity grows but RTT gets
    *worse* and CPU load rises (broadcast flaw) → Average.  R-GMA's
    distributed deployment improves all three → Very good.
    """
    improves_latency = distributed_rtt_ratio < 0.95
    sheds_load = distributed_idle_ratio > 1.25
    adds_capacity = connection_gain > 1.2
    score = sum([improves_latency, sheds_load, adds_capacity])
    if score == 3:
        return Rating.VERY_GOOD
    if score == 2:
        return Rating.GOOD
    if score == 1:
        return Rating.AVERAGE
    return Rating.POOR


@dataclass(frozen=True)
class MiddlewareRating:
    name: str
    realtime: Rating
    concurrency: Rating
    scalability: Rating


def rate_middleware(m: MiddlewareMeasurements) -> MiddlewareRating:
    connection_gain = (
        m.max_connections_distributed / m.max_connections_single
        if m.max_connections_single
        else 0.0
    )
    return MiddlewareRating(
        name=m.name,
        realtime=rate_realtime(m.rtt_ms_light),
        concurrency=rate_concurrency(m.max_connections_single),
        scalability=rate_scalability(
            m.distributed_rtt_ratio, m.distributed_idle_ratio, connection_gain
        ),
    )


def table_iii(
    *measurements: MiddlewareMeasurements,
) -> tuple[list[str], list[list[str]]]:
    """Headers + rows in the paper's Table III layout.

    The paper rates two systems (R-GMA, Narada); any number of
    :class:`MiddlewareMeasurements` can be passed to extend the table with
    further candidates (e.g. the partitioned commit log), one row each in
    argument order.
    """
    headers = [
        "",
        "Real-time performance",
        "Concurrent Connections & Throughput",
        "Scalability",
    ]
    rows = []
    for m in measurements:
        r = rate_middleware(m)
        rows.append([r.name, r.realtime.value, r.concurrency.value, r.scalability.value])
    return headers, rows
