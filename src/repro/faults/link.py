"""Link-fault state the LAN consults on every transfer.

Installed on a :class:`~repro.cluster.network.Lan` by the scheduler
(``lan.faults = LinkFaults(sim)``), this object holds the plan's loss,
latency and partition windows and answers two questions per transfer:

* :meth:`verdict` — is this transfer dropped (partitioned datagram), and
  how much extra delay does it accrue (latency windows; partition *hold*
  for stream traffic, which may be delayed but never lost — that is the
  transport's reliability contract);
* :meth:`loss_probability` — the extra per-fragment loss the active loss
  windows contribute, folded by the LAN into its existing per-fragment
  random-loss draw.

Windows are pure time predicates (``start <= now < end``), so installing
them draws no randomness and leaves runs without active windows
bit-identical to runs with no fault plan at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


def _match(pattern: str, host: str) -> bool:
    return pattern == "*" or pattern == host


@dataclass(frozen=True)
class _LossWindow:
    start: float
    end: float
    probability: float
    src: str
    dst: str


@dataclass(frozen=True)
class _LatencyWindow:
    start: float
    end: float
    extra: float
    jitter_mean: float
    src: str
    dst: str


@dataclass(frozen=True)
class _Partition:
    start: float
    end: float
    hosts: frozenset[str]

    def crosses(self, src: str, dst: str) -> bool:
        return (src in self.hosts) != (dst in self.hosts)


class LinkFaults:
    """Active link-fault windows plus the counters experiments report."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._loss: list[_LossWindow] = []
        self._latency: list[_LatencyWindow] = []
        self._partitions: list[_Partition] = []
        #: Datagrams dropped because they crossed an active partition.
        self.partition_drops = 0
        #: Stream transfers held until a partition healed.
        self.partition_holds = 0
        #: Transfers that accrued extra latency from a window.
        self.delayed_transfers = 0

    # ------------------------------------------------------------- installing
    def add_loss(
        self, start: float, end: float, probability: float,
        src: str = "*", dst: str = "*",
    ) -> None:
        self._loss.append(_LossWindow(start, end, probability, src, dst))

    def add_latency(
        self, start: float, end: float, extra: float, jitter_mean: float = 0.0,
        src: str = "*", dst: str = "*",
    ) -> None:
        self._latency.append(_LatencyWindow(start, end, extra, jitter_mean, src, dst))

    def add_partition(self, start: float, end: float, hosts: tuple[str, ...]) -> None:
        self._partitions.append(_Partition(start, end, frozenset(hosts)))

    @property
    def empty(self) -> bool:
        return not (self._loss or self._latency or self._partitions)

    # -------------------------------------------------------------- consulting
    def loss_probability(self, src: str, dst: str) -> float:
        """Extra per-fragment loss contributed by active windows (combined
        as independent loss processes)."""
        now = self.sim.now
        survive = 1.0
        for w in self._loss:
            if w.start <= now < w.end and _match(w.src, src) and _match(w.dst, dst):
                survive *= 1.0 - w.probability
        return 1.0 - survive

    def verdict(self, src: str, dst: str, droppable: bool) -> tuple[bool, float]:
        """(drop, extra_delay) for a transfer attempted right now."""
        now = self.sim.now
        delay = 0.0
        for p in self._partitions:
            if p.start <= now < p.end and p.crosses(src, dst):
                if droppable:
                    self.partition_drops += 1
                    return True, 0.0
                # Hold the stream until the cut heals.
                delay = max(delay, p.end - now)
                self.partition_holds += 1
        for w in self._latency:
            if w.start <= now < w.end and _match(w.src, src) and _match(w.dst, dst):
                extra = w.extra
                if w.jitter_mean > 0.0:
                    extra += self.sim.rng.exponential(
                        f"faults.jitter.{src}->{dst}", w.jitter_mean
                    )
                delay += extra
        if delay > 0.0:
            self.delayed_transfers += 1
        return False, delay
