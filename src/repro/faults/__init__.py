"""Deterministic fault injection and recovery machinery.

The paper's robustness findings are failure-mode results — the < 0.5 %
loss deadline, JMS-over-UDP's pathological acking, the Narada broker's
memory wall.  This package makes such conditions *injectable*: a
:class:`FaultPlan` schedules link, node and application faults on the sim
clock, a :class:`FaultScheduler` arms them against a concrete run, and
:class:`RetryPolicy` is the recovery half that producers, fleets and
consumers share.  All randomness flows through the kernel's named RNG
streams, so a (seed, plan) pair is bit-reproducible.
"""

from repro.faults.injector import FaultLogEntry, FaultScheduler
from repro.faults.link import LinkFaults
from repro.faults.plan import PLANS, FaultPlan, FaultSpec, PlanTemplate, named_plan
from repro.faults.recovery import NO_RETRY, RetryPolicy

__all__ = [
    "FaultLogEntry",
    "FaultScheduler",
    "FaultPlan",
    "FaultSpec",
    "LinkFaults",
    "NO_RETRY",
    "PLANS",
    "PlanTemplate",
    "RetryPolicy",
    "named_plan",
]
