"""Deterministic fault schedules.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries, each
pinned to an absolute simulated time.  Plans are *data*: building one draws
no randomness and arms nothing — the :class:`~repro.faults.injector.FaultScheduler`
turns a plan into scheduled kernel callbacks and link-fault windows when it
is attached to a run.  Any randomness a fault needs at injection time (loss
draws, retry jitter) comes from the kernel's named
:class:`~repro.sim.rng.RngStreams`, so two runs with the same seed and the
same plan are bit-identical — the property the chaos experiments assert.

Targets are symbolic so one plan works against any middleware:

=====================  =====================================================
``"*"``                every host pair (link faults)
``"host:hydra5"``      link faults touching one host
``"broker:1"``         the second broker of whatever deployment is attached
``"node:hydra1"``      a cluster node (CPU faults)
``"consumer:0"``       the first attached consumer (application faults)
=====================  =====================================================

The named templates at the bottom (:data:`PLANS`) are functions of the
measurement window — ``template(measure_since, duration)`` — so the same
``--fault-plan loss_burst`` lands its fault window inside the steady-state
window at every scale preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: Fault kinds the scheduler understands.
FAULT_KINDS = (
    "packet_loss",
    "latency",
    "partition",
    "broker_crash",
    "cpu_slowdown",
    "memory_pressure",
    "stall",
    "slow_consumer",
    "consumer_crash",
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault event."""

    kind: str
    #: Absolute simulated time the fault starts.
    at: float
    #: How long it lasts; 0 for instantaneous faults (crash without restart).
    duration: float = 0.0
    #: Symbolic target (see module docstring).
    target: str = "*"
    #: Kind-specific parameters.
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("fault time must be >= 0")
        if self.duration < 0:
            raise ValueError("fault duration must be >= 0")

    @property
    def until(self) -> float:
        return self.at + self.duration

    def param(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)


class FaultPlan:
    """A builder-style ordered schedule of faults."""

    def __init__(self) -> None:
        self._specs: list[FaultSpec] = []

    # ------------------------------------------------------------ link faults
    def packet_loss(
        self,
        at: float,
        duration: float,
        probability: float,
        src: str = "*",
        dst: str = "*",
    ) -> "FaultPlan":
        """Raise per-fragment datagram loss to ``probability`` in a window.

        Only droppable (datagram) traffic is affected; stream transfers are
        the transport layer's reliability problem and never vanish mid-wire.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        return self._add(
            FaultSpec(
                "packet_loss", at, duration, f"{src}->{dst}",
                {"probability": probability, "src": src, "dst": dst},
            )
        )

    def latency(
        self,
        at: float,
        duration: float,
        extra: float,
        jitter: float = 0.0,
        src: str = "*",
        dst: str = "*",
    ) -> "FaultPlan":
        """Add ``extra`` seconds (plus exponential ``jitter`` mean) per
        transfer in a window — a congested or flapping path."""
        if extra < 0 or jitter < 0:
            raise ValueError("latency amounts must be >= 0")
        return self._add(
            FaultSpec(
                "latency", at, duration, f"{src}->{dst}",
                {"extra": extra, "jitter": jitter, "src": src, "dst": dst},
            )
        )

    def partition(
        self, at: float, duration: float, hosts: tuple[str, ...]
    ) -> "FaultPlan":
        """Isolate ``hosts`` from the rest of the LAN.

        Datagrams crossing the cut are dropped; stream traffic is *held*
        (delivered only once the partition heals), matching TCP's contract
        that accepted bytes eventually arrive.
        """
        if not hosts:
            raise ValueError("partition needs at least one host")
        return self._add(
            FaultSpec(
                "partition", at, duration, ",".join(hosts),
                {"hosts": tuple(hosts)},
            )
        )

    # ------------------------------------------------------------ node faults
    def broker_crash(
        self, at: float, broker: str = "broker:0", restart_after: float | None = None
    ) -> "FaultPlan":
        """Kill a broker process (sever its connections); optionally restart
        it ``restart_after`` seconds later."""
        duration = restart_after if restart_after is not None else 0.0
        return self._add(
            FaultSpec(
                "broker_crash", at, duration, broker,
                {"restart_after": restart_after},
            )
        )

    def cpu_slowdown(
        self, at: float, duration: float, node: str, factor: float
    ) -> "FaultPlan":
        """Divide a node's CPU speed by ``factor`` for a window (thermal
        throttling, a co-scheduled job)."""
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        return self._add(
            FaultSpec(
                "cpu_slowdown", at, duration, f"node:{node}", {"factor": factor}
            )
        )

    def memory_pressure(
        self, at: float, broker: str, nbytes: float, duration: float | None = None
    ) -> "FaultPlan":
        """Allocate ``nbytes`` of ballast on a broker's JVM heap.

        Mirrors Fig 7's exhaustion: the broker refuses connections it can no
        longer hold state for, and if the ballast itself does not fit the
        JVM dies and the broker is killed.  With ``duration`` the ballast is
        freed again (a leak that gets collected).
        """
        if nbytes <= 0:
            raise ValueError("ballast must be positive")
        return self._add(
            FaultSpec(
                "memory_pressure", at, duration or 0.0, broker,
                {"nbytes": nbytes, "release": duration is not None},
            )
        )

    def stall(self, at: float, duration: float, node: str) -> "FaultPlan":
        """Seize a node's CPU with one non-preemptible job for ``duration``
        seconds — a stop-the-world GC pause or a wedged servlet."""
        return self._add(FaultSpec("stall", at, duration, f"node:{node}"))

    # ----------------------------------------------------- application faults
    def slow_consumer(
        self, at: float, duration: float, consumer: int, factor: float
    ) -> "FaultPlan":
        """Multiply one consumer's per-record processing CPU by ``factor``."""
        if factor < 1.0:
            raise ValueError("slow-consumer factor must be >= 1")
        return self._add(
            FaultSpec(
                "slow_consumer", at, duration, f"consumer:{consumer}",
                {"factor": factor},
            )
        )

    def consumer_crash(self, at: float, consumer: int) -> "FaultPlan":
        """Close one consumer (its group should rebalance around it)."""
        return self._add(FaultSpec("consumer_crash", at, 0.0, f"consumer:{consumer}"))

    # ------------------------------------------------------------ composition
    def merge(self, other: "FaultPlan") -> "FaultPlan":
        """Compose two plans into a new one (neither input is modified).

        Scenario-generated faults and a user ``--fault-plan`` land on the
        same run through this: the union of both spec lists, kept in the
        canonical ``(at, kind, target)`` order so merge order does not
        matter.  Exact duplicate specs collapse to one; two *different*
        specs of the same kind with overlapping windows on the same target
        (e.g. two loss windows on one link) are a contradiction — which
        parameters apply mid-overlap? — and raise :class:`ValueError`
        instead of silently stacking.
        """
        merged = FaultPlan()
        seen: set[tuple] = set()
        for spec in (*self._specs, *other._specs):
            fingerprint = (
                spec.kind, spec.at, spec.duration, spec.target,
                tuple(sorted(spec.params.items())),
            )
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            merged._add(spec)
        by_key: dict[tuple[str, str], list[FaultSpec]] = {}
        for spec in merged._specs:
            by_key.setdefault((spec.kind, spec.target), []).append(spec)
        for (kind, target), specs in by_key.items():
            for a, b in zip(specs, specs[1:]):  # sorted by `at` already
                if b.at < a.until or a.at == b.at:
                    raise ValueError(
                        f"conflicting {kind} windows on {target!r}: "
                        f"[{a.at:g}, {a.until:g}) overlaps "
                        f"[{b.at:g}, {b.until:g})"
                    )
        return merged

    # -------------------------------------------------------------- plumbing
    def _add(self, spec: FaultSpec) -> "FaultPlan":
        self._specs.append(spec)
        self._specs.sort(key=lambda s: (s.at, s.kind, s.target))
        return self

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        return tuple(self._specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultPlan {len(self._specs)} specs>"


# --------------------------------------------------------------- templates
#: A template maps the steady-state measurement window onto a concrete plan.
PlanTemplate = Callable[[float, float], FaultPlan]


def loss_burst(measure_since: float, duration: float) -> FaultPlan:
    """25 % per-fragment datagram loss over the middle of the window."""
    return FaultPlan().packet_loss(
        at=measure_since + 0.2 * duration,
        duration=0.4 * duration,
        probability=0.25,
    )


def latency_spike(measure_since: float, duration: float) -> FaultPlan:
    """+40 ms (plus 10 ms exponential jitter) per transfer mid-window."""
    return FaultPlan().latency(
        at=measure_since + 0.2 * duration,
        duration=0.4 * duration,
        extra=0.040,
        jitter=0.010,
    )


def partition_window(measure_since: float, duration: float) -> FaultPlan:
    """Cut one client node (hydra7) off the switch for a fifth of the run."""
    return FaultPlan().partition(
        at=measure_since + 0.3 * duration,
        duration=0.2 * duration,
        hosts=("hydra7",),
    )


def broker_outage(measure_since: float, duration: float) -> FaultPlan:
    """Crash the second broker a quarter in; restart it after 0.35·duration."""
    return FaultPlan().broker_crash(
        at=measure_since + 0.25 * duration,
        broker="broker:1",
        restart_after=0.35 * duration,
    )


def coordinator_outage(measure_since: float, duration: float) -> FaultPlan:
    """Crash broker 0 — the one hosting the group coordinator (and, when
    replicated, the ``__offsets`` partition leader) — a quarter in; restart
    it after 0.35·duration.  Exercises coordinator re-election."""
    return FaultPlan().broker_crash(
        at=measure_since + 0.25 * duration,
        broker="broker:0",
        restart_after=0.35 * duration,
    )


def gateway_outage(measure_since: float, duration: float) -> FaultPlan:
    """Crash the first *gateway* a quarter in; restart after 0.35·duration.

    Edge runs attach their gateways first in the scheduler's broker list,
    so ``broker:0`` resolves to gateway 0 — the one the stamping client
    calls home.  Exercises dropped long-polls, client failover with a time
    cursor, and catch-up replay from the surviving gateway's ring.
    """
    return FaultPlan().broker_crash(
        at=measure_since + 0.25 * duration,
        broker="broker:0",
        restart_after=0.35 * duration,
    )


def durability_gauntlet(measure_since: float, duration: float) -> FaultPlan:
    """The exactly-once obstacle course: broker crash + consumer crash +
    client partition, one after another inside the measured window.

    * ``broker:0`` dies early and restarts after at most ~6 s (capped in
      absolute terms so a fixed client retry budget clears it at every
      scale preset).  Against Narada that is the single broker — durable
      replay territory; against plog it is the group coordinator *and* a
      partition leader — re-election plus idempotent retry territory.
    * ``consumer:1`` (the hydra6 receiver) is killed mid-window: durable
      re-subscribe / group rebalance must hand its messages over without
      losing or double-counting any.
    * hydra7 drops off the switch late in the window: TCP holds client
      traffic, producer-side retry fires, and broker-side dedup must
      absorb the duplicate sends that arrive after the heal.
    """
    outage = min(0.2 * duration, 6.0)
    return (
        FaultPlan()
        .broker_crash(
            at=measure_since + 0.15 * duration,
            broker="broker:0",
            restart_after=outage,
        )
        .consumer_crash(at=measure_since + 0.55 * duration, consumer=1)
        .partition(
            at=measure_since + 0.7 * duration,
            duration=0.15 * duration,
            hosts=("hydra7",),
        )
    )


def mixed(measure_since: float, duration: float) -> FaultPlan:
    """Loss burst plus a latency spike, overlapping — a genuinely bad day."""
    plan = loss_burst(measure_since, duration)
    plan.latency(
        at=measure_since + 0.5 * duration,
        duration=0.3 * duration,
        extra=0.025,
        jitter=0.005,
    )
    return plan


#: ``--fault-plan`` registry: name -> template.
PLANS: dict[str, PlanTemplate] = {
    "loss_burst": loss_burst,
    "latency_spike": latency_spike,
    "partition": partition_window,
    "broker_outage": broker_outage,
    "coordinator_outage": coordinator_outage,
    "gateway_outage": gateway_outage,
    "durability_gauntlet": durability_gauntlet,
    "mixed": mixed,
}


def named_plan(name: str) -> PlanTemplate:
    try:
        return PLANS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault plan {name!r}; choose from {sorted(PLANS)}"
        ) from None
