"""Recovery policies shared by producers, fleets and consumers.

The subsystem's other half: injection without recovery machinery only
measures how badly things break; the paper's §I requirement (delivery
within ~5 s, loss under 0.5 %) is about how fast the system *heals*.  A
:class:`RetryPolicy` is a frozen value object — clients compute their
backoff delays from it, drawing jitter from a named RNG stream so retry
storms de-synchronise deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with multiplicative jitter.

    ``retries=0`` (the default) disables recovery entirely — existing
    experiments keep their exact behaviour unless a config opts in.
    """

    #: Re-attempts after the first failure; 0 = give up immediately.
    retries: int = 0
    #: First backoff delay (seconds).
    backoff: float = 0.1
    #: Growth per attempt.
    multiplier: float = 2.0
    #: Ceiling on any single delay.
    max_backoff: float = 5.0
    #: Fractional jitter; the delay is scaled by ``1 + jitter * U[0,1)``.
    jitter: float = 0.1
    #: Derive the timeout and the backoff base from observed ack RTTs
    #: (Jacobson/Karels SRTT/RTTVAR, like TCP's RTO) instead of the static
    #: ``backoff``.  Clients feed an :class:`RttEstimator` and pass its
    #: ``rto`` into :meth:`delay`; the static fields become the fallback
    #: before the first sample and the ``max_backoff`` ceiling still holds.
    adaptive: bool = False

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff <= 0 or self.multiplier < 1.0 or self.max_backoff <= 0:
            raise ValueError("backoff parameters must be positive (multiplier >= 1)")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.retries > 0

    def delay(
        self,
        attempt: int,
        sim: Optional["Simulator"] = None,
        stream: str = "retry",
        rto: Optional[float] = None,
    ) -> float:
        """Backoff before re-attempt number ``attempt`` (1-based).

        With ``adaptive=True`` and an ``rto`` from an :class:`RttEstimator`,
        the first backoff is the RTO itself (the connection's own estimate of
        "how long until I should have heard back") and later attempts grow
        from there; the static ``backoff`` is only the pre-sample fallback.
        """
        first = self.backoff
        if self.adaptive and rto is not None:
            first = rto
        base = min(
            first * self.multiplier ** max(0, attempt - 1),
            self.max_backoff,
        )
        if sim is not None and self.jitter > 0.0:
            base *= 1.0 + self.jitter * sim.rng.random(stream)
        return base

    def total_budget(self) -> float:
        """Worst-case un-jittered time spent backing off across all retries
        (useful for sizing drain windows in experiments)."""
        return sum(self.delay(k) for k in range(1, self.retries + 1))


class RttEstimator:
    """Jacobson/Karels round-trip estimator (the TCP RTO algorithm).

    ``srtt`` is an exponentially-weighted mean of observed RTTs
    (gain ``alpha``), ``rttvar`` an EWMA of the deviation (gain ``beta``),
    and the retransmission timeout is ``srtt + k * rttvar`` clamped to
    ``[min_rto, max_rto]``.  Callers must apply Karn's rule themselves:
    never feed the RTT of a retransmitted exchange (its ack is ambiguous).

    Pure arithmetic — no simulated time, no RNG — so it can live inside any
    client without perturbing the schedule.
    """

    __slots__ = (
        "srtt", "rttvar", "samples", "_initial", "min_rto", "max_rto",
        "alpha", "beta", "k", "_backoff",
    )

    def __init__(
        self,
        initial_rto: float = 1.0,
        min_rto: float = 0.05,
        max_rto: float = 60.0,
        alpha: float = 1.0 / 8.0,
        beta: float = 1.0 / 4.0,
        k: float = 4.0,
    ):
        if initial_rto <= 0 or min_rto <= 0 or max_rto < min_rto:
            raise ValueError("RTO bounds must be positive with max_rto >= min_rto")
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.samples = 0
        self._initial = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.alpha = alpha
        self.beta = beta
        self.k = k
        #: RFC 6298 §5.5 exponential backoff multiplier, doubled on each
        #: timeout and reset by the next valid sample.  This is what lets
        #: the RTO climb out of a latency *step*: Karn's rule starves the
        #: estimator of samples while every first attempt is timing out,
        #: so without the backoff the RTO would stay pinned below the new
        #: RTT forever.
        self._backoff = 1.0

    def observe(self, rtt: float) -> None:
        """Fold one round-trip sample into the estimate."""
        if rtt < 0:
            raise ValueError("rtt must be >= 0")
        if self.srtt is None:
            # RFC 6298 initialisation: first sample seeds both estimators.
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            err = rtt - self.srtt
            self.rttvar = (1.0 - self.beta) * self.rttvar + self.beta * abs(err)
            self.srtt = self.srtt + self.alpha * err
        self.samples += 1
        self._backoff = 1.0

    def backoff(self) -> None:
        """A timeout fired: double the RTO until a fresh sample arrives."""
        self._backoff = min(self._backoff * 2.0, 64.0)

    @property
    def rto(self) -> float:
        """Current retransmission timeout (``initial_rto`` before any sample)."""
        if self.srtt is None:
            return min(self._initial * self._backoff, self.max_rto)
        base = max(self.srtt + self.k * self.rttvar, self.min_rto)
        return min(base * self._backoff, self.max_rto)


#: Shorthand for the default no-recovery policy.
NO_RETRY = RetryPolicy()
