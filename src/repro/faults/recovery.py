"""Recovery policies shared by producers, fleets and consumers.

The subsystem's other half: injection without recovery machinery only
measures how badly things break; the paper's §I requirement (delivery
within ~5 s, loss under 0.5 %) is about how fast the system *heals*.  A
:class:`RetryPolicy` is a frozen value object — clients compute their
backoff delays from it, drawing jitter from a named RNG stream so retry
storms de-synchronise deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with multiplicative jitter.

    ``retries=0`` (the default) disables recovery entirely — existing
    experiments keep their exact behaviour unless a config opts in.
    """

    #: Re-attempts after the first failure; 0 = give up immediately.
    retries: int = 0
    #: First backoff delay (seconds).
    backoff: float = 0.1
    #: Growth per attempt.
    multiplier: float = 2.0
    #: Ceiling on any single delay.
    max_backoff: float = 5.0
    #: Fractional jitter; the delay is scaled by ``1 + jitter * U[0,1)``.
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff <= 0 or self.multiplier < 1.0 or self.max_backoff <= 0:
            raise ValueError("backoff parameters must be positive (multiplier >= 1)")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.retries > 0

    def delay(
        self,
        attempt: int,
        sim: Optional["Simulator"] = None,
        stream: str = "retry",
    ) -> float:
        """Backoff before re-attempt number ``attempt`` (1-based)."""
        base = min(
            self.backoff * self.multiplier ** max(0, attempt - 1),
            self.max_backoff,
        )
        if sim is not None and self.jitter > 0.0:
            base *= 1.0 + self.jitter * sim.rng.random(stream)
        return base

    def total_budget(self) -> float:
        """Worst-case un-jittered time spent backing off across all retries
        (useful for sizing drain windows in experiments)."""
        return sum(self.delay(k) for k in range(1, self.retries + 1))


#: Shorthand for the default no-recovery policy.
NO_RETRY = RetryPolicy()
