"""Turning a :class:`~repro.faults.plan.FaultPlan` into scheduled havoc.

``FaultScheduler(sim, plan).attach(lan=..., cluster=..., brokers=...,
consumers=...)`` resolves the plan's symbolic targets against one concrete
run and arms everything:

* link faults become time-predicated windows on the LAN's
  :class:`~repro.faults.link.LinkFaults`;
* node and application faults become ``sim.call_at`` callbacks (crash,
  restart, CPU rescale, ballast allocation, consumer close);
* every fault that actually fires appends a :class:`FaultLogEntry`, so an
  experiment can report its injected timeline next to its measurements.

Brokers only need the duck-typed surface both
:class:`repro.plog.broker.PlogBroker` and :class:`repro.narada.Broker`
share: ``name``, ``alive``, ``jvm``, ``node``, ``crash()``, ``restart()``.
Specs whose target does not resolve (e.g. ``broker:1`` against a
single-broker run) are skipped and logged, not errors — one plan serves
every deployment shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.cluster.jvm import OutOfMemoryError
from repro.faults.link import LinkFaults
from repro.faults.plan import FaultPlan, FaultSpec
from repro.telemetry.context import current as _telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.hydra import HydraCluster
    from repro.cluster.network import Lan
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class FaultLogEntry:
    """One line of the injected-fault timeline."""

    t: float
    kind: str
    target: str
    note: str

    def render(self) -> str:
        return f"t={self.t:9.3f}s  {self.kind:<16} {self.target:<18} {self.note}"


class FaultScheduler:
    """Arms one plan against one run."""

    def __init__(self, sim: "Simulator", plan: FaultPlan):
        self.sim = sim
        self.plan = plan
        self.log: list[FaultLogEntry] = []
        self.link_faults: Optional[LinkFaults] = None
        self._lan: Optional["Lan"] = None
        self._cluster: Optional["HydraCluster"] = None
        self._brokers: list[Any] = []
        self._consumers: list[Any] = []
        self._attached = False

    # ---------------------------------------------------------------- attach
    def attach(
        self,
        lan: Optional["Lan"] = None,
        cluster: Optional["HydraCluster"] = None,
        brokers: Sequence[Any] = (),
        consumers: Sequence[Any] = (),
    ) -> "FaultScheduler":
        if self._attached:
            raise RuntimeError("fault scheduler already attached")
        self._attached = True
        self._lan = lan
        self._cluster = cluster
        self._brokers = list(brokers)
        self._consumers = list(consumers)
        if lan is not None:
            if lan.faults is None:
                lan.faults = LinkFaults(self.sim)
            self.link_faults = lan.faults
        tel = _telemetry()
        for spec in self.plan:
            if tel is not None:
                tel.fault_window(spec.kind, spec.at, spec.until, spec.target)
            self._arm(spec)
        return self

    def _note(self, t: float, kind: str, target: str, note: str) -> None:
        self.log.append(FaultLogEntry(t, kind, target, note))

    def render_log(self) -> list[str]:
        return [entry.render() for entry in sorted(self.log, key=lambda e: e.t)]

    # --------------------------------------------------------------- resolve
    def _broker_for(self, target: str) -> Optional[Any]:
        if target.startswith("broker:"):
            index = int(target.split(":", 1)[1])
            if 0 <= index < len(self._brokers):
                return self._brokers[index]
            return None
        for broker in self._brokers:
            if broker.name == target:
                return broker
        return None

    def _node_for(self, target: str) -> Optional[Any]:
        name = target.split(":", 1)[1] if target.startswith("node:") else target
        if self._cluster is None:
            return None
        try:
            return self._cluster.node(name)
        except KeyError:
            return None

    def _consumer_for(self, target: str) -> Optional[Any]:
        index = int(target.split(":", 1)[1])
        if 0 <= index < len(self._consumers):
            return self._consumers[index]
        return None

    # ------------------------------------------------------------------- arm
    def _arm(self, spec: FaultSpec) -> None:
        kind = spec.kind
        if kind in ("packet_loss", "latency", "partition"):
            self._arm_link(spec)
        elif kind == "broker_crash":
            self._arm_broker_crash(spec)
        elif kind == "cpu_slowdown":
            self._arm_cpu_slowdown(spec)
        elif kind == "memory_pressure":
            self._arm_memory_pressure(spec)
        elif kind == "stall":
            self._arm_stall(spec)
        elif kind == "slow_consumer":
            self._arm_slow_consumer(spec)
        elif kind == "consumer_crash":
            self._arm_consumer_crash(spec)

    def _skip(self, spec: FaultSpec, why: str) -> None:
        self._note(spec.at, spec.kind, spec.target, f"skipped: {why}")

    def _arm_link(self, spec: FaultSpec) -> None:
        if self.link_faults is None:
            self._skip(spec, "no LAN attached")
            return
        lf = self.link_faults
        if spec.kind == "packet_loss":
            lf.add_loss(
                spec.at, spec.until, spec.param("probability"),
                spec.param("src", "*"), spec.param("dst", "*"),
            )
            note = f"p={spec.param('probability'):.2f} for {spec.duration:.1f}s"
        elif spec.kind == "latency":
            lf.add_latency(
                spec.at, spec.until, spec.param("extra"),
                spec.param("jitter", 0.0),
                spec.param("src", "*"), spec.param("dst", "*"),
            )
            note = f"+{spec.param('extra') * 1e3:.0f}ms for {spec.duration:.1f}s"
        else:
            lf.add_partition(spec.at, spec.until, spec.param("hosts"))
            note = f"isolated for {spec.duration:.1f}s"
        self.sim.call_at(
            spec.at, lambda: self._note(self.sim.now, spec.kind, spec.target, note)
        )

    def _arm_broker_crash(self, spec: FaultSpec) -> None:
        broker = self._broker_for(spec.target)
        if broker is None:
            self._skip(spec, "no such broker in this run")
            return
        restart_after = spec.param("restart_after")

        def crash() -> None:
            broker.crash()
            self._note(self.sim.now, "broker_crash", broker.name, "process killed")

        def restart() -> None:
            if broker.jvm.dead:
                self._note(
                    self.sim.now, "broker_restart", broker.name,
                    "skipped: JVM dead",
                )
                return
            broker.restart()
            self._note(self.sim.now, "broker_restart", broker.name, "back up")

        self.sim.call_at(spec.at, crash)
        if restart_after is not None:
            self.sim.call_at(spec.at + restart_after, restart)

    def _arm_cpu_slowdown(self, spec: FaultSpec) -> None:
        node = self._node_for(spec.target)
        if node is None:
            self._skip(spec, "no such node in this run")
            return
        factor = spec.param("factor")
        state: dict[str, float] = {}

        def apply() -> None:
            state["original"] = node.cpu_scale
            node.cpu_scale = node.cpu_scale / factor
            self._note(
                self.sim.now, "cpu_slowdown", node.name,
                f"{factor:.1f}x slower for {spec.duration:.1f}s",
            )

        def revert() -> None:
            node.cpu_scale = state.get("original", node.cpu_scale * factor)
            self._note(self.sim.now, "cpu_restore", node.name, "full speed")

        self.sim.call_at(spec.at, apply)
        self.sim.call_at(spec.until, revert)

    def _arm_memory_pressure(self, spec: FaultSpec) -> None:
        broker = self._broker_for(spec.target)
        if broker is None:
            self._skip(spec, "no such broker in this run")
            return
        nbytes = spec.param("nbytes")

        def apply() -> None:
            try:
                broker.jvm.alloc(nbytes, "fault ballast")
            except OutOfMemoryError:
                # The ballast itself does not fit: the JVM is dead, which
                # kills the broker for good (no restart possible).
                broker.crash()
                self._note(
                    self.sim.now, "memory_pressure", broker.name,
                    f"{nbytes / 2**20:.0f} MiB ballast -> OOM kill",
                )
                return
            self._note(
                self.sim.now, "memory_pressure", broker.name,
                f"{nbytes / 2**20:.0f} MiB ballast allocated",
            )
            if spec.param("release"):
                def release() -> None:
                    if not broker.jvm.dead:
                        broker.jvm.free(nbytes)
                        self._note(
                            self.sim.now, "memory_release", broker.name,
                            "ballast collected",
                        )
                self.sim.call_at(spec.until, release)

        self.sim.call_at(spec.at, apply)

    def _arm_stall(self, spec: FaultSpec) -> None:
        node = self._node_for(spec.target)
        if node is None:
            self._skip(spec, "no such node in this run")
            return

        def apply() -> None:
            # One non-preemptible job that pins the CPU for the window's
            # wall-clock duration at the node's current speed.
            node.execute_process(spec.duration * node.cpu_scale)
            self._note(
                self.sim.now, "stall", node.name,
                f"CPU seized for {spec.duration:.1f}s",
            )

        self.sim.call_at(spec.at, apply)

    def _arm_slow_consumer(self, spec: FaultSpec) -> None:
        consumer = self._consumer_for(spec.target)
        if consumer is None:
            self._skip(spec, "no such consumer in this run")
            return
        factor = spec.param("factor")

        def apply() -> None:
            consumer.record_cpu_multiplier = factor
            self._note(
                self.sim.now, "slow_consumer", consumer.name,
                f"{factor:.1f}x per-record CPU for {spec.duration:.1f}s",
            )

        def revert() -> None:
            consumer.record_cpu_multiplier = 1.0
            self._note(self.sim.now, "consumer_restore", consumer.name, "normal")

        self.sim.call_at(spec.at, apply)
        self.sim.call_at(spec.until, revert)

    def _arm_consumer_crash(self, spec: FaultSpec) -> None:
        consumer = self._consumer_for(spec.target)
        if consumer is None:
            self._skip(spec, "no such consumer in this run")
            return

        def apply() -> None:
            consumer.close()
            self._note(
                self.sim.now, "consumer_crash", consumer.name,
                "closed; group should rebalance",
            )

        self.sim.call_at(spec.at, apply)
