"""R-GMA experiments: Figs 10, 11, 12, 13, 14 and the warm-up loss result.

:func:`rgma_run` reproduces the §III.F setup: generator clients create
Primary Producers against the producer servlet(s), publish a row every 10 s,
and per-client-node subscribers poll Consumer resources (with genid-range
WHERE clauses) every 100 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster import HydraCluster, VmStat
from repro.cluster.vmstat import VmStatSummary
from repro.core import ExperimentResult, RecordBook, percentile_curve, rtt_stats
from repro.harness.narada_experiments import steady_state_summary
from repro.harness.scale import Scale
from repro.powergrid import FleetConfig, RgmaFleet, RgmaReceiver
from repro.rgma import RGMAConfig, RGMADeployment
from repro.sim import Simulator
from repro.telemetry.context import current as _telemetry
from repro.transport.http import HttpClient

#: Generator client nodes (paper: two publish, two receive — §III.F.1).
PUBLISH_NODES = ("hydra5", "hydra6")
RECEIVE_NODES = ("hydra7", "hydra8")


@dataclass
class RgmaRunResult:
    connections: int
    book: RecordBook
    measure_since: float
    vmstat: dict[str, VmStatSummary]
    oom: bool
    refused: int
    sent: int
    received: int
    mean_rtt_ms: float
    stddev_rtt_ms: float
    loss_rate: float
    rtts: Any
    #: Redelivered tuples the consumers suppressed (first delivery wins).
    duplicates: int = 0


def rgma_run(
    connections: int,
    *,
    distributed: bool = False,
    secondary_producer: bool = False,
    skip_warmup: bool = False,
    use_https: bool = False,
    scale: Optional[Scale] = None,
    seed: int = 1,
    config: Optional[RGMAConfig] = None,
    fault_plan: Any = None,
    scenario: Any = None,
) -> RgmaRunResult:
    """One §III.F test: ``connections`` Primary Producers, two subscribers.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan` or a template callable
    ``(measure_since, duration) -> FaultPlan``) arms link- and node-level
    fault injection; servlet stalls target the server nodes.  ``scenario``
    (a :class:`repro.scenario.Scenario` or template) additionally perturbs
    the producers' publication rates and merges its fault fragment in.
    """
    scale = scale or Scale.from_env()
    sim = Simulator(seed=seed)
    cluster = HydraCluster(sim)
    config = config or RGMAConfig()
    transport = None
    if use_https:
        from repro.transport.tls import TlsTransport

        transport = TlsTransport(sim, cluster.lan)
    if distributed:
        deployment = RGMADeployment.distributed(sim, cluster, config)
        server_nodes = ["hydra1", "hydra2", "hydra3", "hydra4"]
    else:
        deployment = RGMADeployment.single_server(
            sim, cluster, config, transport=transport
        )
        server_nodes = ["hydra1"]

    vmstats = {name: VmStat(sim, cluster.node(name)) for name in server_nodes}
    tel = _telemetry()
    if tel is not None:
        for name in server_nodes:
            tel.sample_node(sim, cluster.node(name), middleware="rgma")

    # Secondary producer (Fig 10): one SP on the (first) producer site; the
    # subscribers then read exclusively through it.
    if secondary_producer:
        http = HttpClient(
            sim,
            deployment.transport,
            cluster.node(RECEIVE_NODES[0]),
            deployment.producer_hosts[0],
            8080,
        )

        def create_sp():
            response = yield from http.request("/sp/create", {"table": "gridmon"}, 120)
            assert response.status == 200, response.body

        sim.run_process(create_sp())

    creation_span = connections * scale.creation_interval_rgma
    measure_since = sim.now + creation_span + scale.warmup[1] + config.mediation_period + 4.0
    stop_at = measure_since + scale.duration
    fleet_config = FleetConfig(
        n_generators=connections,
        publish_interval=10.0,
        creation_interval=scale.creation_interval_rgma,
        warmup_min=scale.warmup[0],
        warmup_max=scale.warmup[1],
        duration=scale.duration,
        stop_at=stop_at,
        client_nodes=PUBLISH_NODES,
        skip_warmup=skip_warmup,
    )
    from repro.scenario.compiler import arm_scenario, merge_fault_plan

    fleet_config, compiled = arm_scenario(
        scenario, measure_since, scale.duration, fleet_config
    )
    book = RecordBook()

    # Two subscribers, each taking one publisher node's genid block via a
    # WHERE clause (content-based filtering at the producers).
    receivers: list[RgmaReceiver] = []
    for k, node_name in enumerate(RECEIVE_NODES):
        lo, hi = fleet_config.id_range(k)
        if lo >= hi:
            continue
        receiver = RgmaReceiver(
            sim,
            cluster,
            deployment,
            node_name,
            select_sql=f"SELECT * FROM gridmon WHERE genid >= {lo} AND genid < {hi}",
            consumer_index=k,
            producer_type="secondary" if secondary_producer else "primary",
            poll_interval=config.poll_interval,
        )
        sim.run_process(receiver.start())
        receivers.append(receiver)

    fleet = RgmaFleet(sim, cluster, deployment, fleet_config, book)
    fleet.start()

    plan = (
        fault_plan(measure_since, scale.duration)
        if callable(fault_plan)
        else fault_plan
    )
    plan = merge_fault_plan(compiled, plan)
    if plan is not None and len(plan):
        from repro.faults import FaultScheduler

        FaultScheduler(sim, plan).attach(lan=cluster.lan, cluster=cluster)

    # The SP path adds its deliberate delay to every message: extend the
    # drain so republished tuples are observed.
    extra_drain = config.secondary_producer_delay + 10.0 if secondary_producer else 0.0
    sim.run(until=stop_at + scale.drain + extra_drain)
    for vm in vmstats.values():
        vm.stop()
    for receiver in receivers:
        receiver.stop()

    stats = rtt_stats(book, since=measure_since)
    if tel is not None:
        tel.observe_run(
            book,
            middleware="rgma",
            measure_since=measure_since,
            label=f"rgma{'_dist' if distributed else ''}[{connections}]",
        )
    return RgmaRunResult(
        connections=connections,
        book=book,
        measure_since=measure_since,
        vmstat={
            n: steady_state_summary(vm, measure_since) for n, vm in vmstats.items()
        },
        oom=fleet.stats.connections_refused > 0,
        refused=fleet.stats.connections_refused,
        sent=stats.sent,
        received=stats.count,
        mean_rtt_ms=stats.mean_ms,
        stddev_rtt_ms=stats.stddev_ms,
        loss_rate=stats.loss_rate,
        rtts=book.rtts(since=measure_since),
        duplicates=sum(r.duplicates for r in receivers),
    )


# ---------------------------------------------------------------- sweeps

SINGLE_SWEEP = (100, 200, 400, 600, 800)
DISTRIBUTED_SWEEP = (400, 600, 800, 1000)
SECONDARY_SWEEP = (50, 100, 200)


def run_scaling_sweep(
    connections: tuple[int, ...],
    distributed: bool,
    scale: Optional[Scale] = None,
    seed: int = 1,
    jobs: int = 1,
) -> dict[int, RgmaRunResult]:
    from repro.harness.parallel import map_points

    results = map_points(
        __name__,
        "rgma_run",
        [
            dict(connections=n, distributed=distributed, scale=scale, seed=seed)
            for n in connections
        ],
        jobs=jobs,
    )
    return dict(zip(connections, results))


def fig11(
    single: dict[int, RgmaRunResult], dist: dict[int, RgmaRunResult]
) -> ExperimentResult:
    """Fig 11: R-GMA RTT & STDDEV vs connections, single vs distributed."""
    result = ExperimentResult(
        "fig11",
        "R-GMA Primary Producer and Consumer tests",
        "concurrent connections",
        "millisecond",
    )
    for n, run in sorted(single.items()):
        if run.oom:
            result.note(
                f"single R-GMA server OOM at {n} connections "
                f"({run.refused} producers refused) — paper: 'one R-GMA "
                "server cannot accept 800 concurrent connections'"
            )
            continue
        result.add_point("RTT", n, run.mean_rtt_ms)
        result.add_point("STDDEV", n, run.stddev_rtt_ms)
    for n, run in sorted(dist.items()):
        if run.oom:
            result.note(f"distributed R-GMA OOM at {n} connections")
            continue
        result.add_point("RTT2", n, run.mean_rtt_ms)
        result.add_point("STDDEV2", n, run.stddev_rtt_ms)
    import numpy as np

    biggest = max((n for n, r in single.items() if not r.oom), default=None)
    if biggest is not None:
        frac = float((single[biggest].rtts <= 4.0).mean())
        result.note(
            f"single server at {biggest} connections: {frac:.1%} of messages "
            "within 4000 ms (paper: '99% of messages arrived within 4000 ms')"
        )
    return result


def fig12(single: dict[int, RgmaRunResult]) -> ExperimentResult:
    """Fig 12: single-server percentiles, 100-600 connections."""
    result = ExperimentResult(
        "fig12",
        "R-GMA Primary Producer and Consumer single server tests, percentile of RTT",
        "percentile",
        "millisecond",
    )
    for n, run in sorted(single.items()):
        if run.oom or n > 600:
            continue
        for pct, ms in percentile_curve(run.rtts):
            result.add_point(str(n), pct, ms)
    return result


def fig13(
    single: dict[int, RgmaRunResult], dist: dict[int, RgmaRunResult]
) -> ExperimentResult:
    """Fig 13: CPU idle and memory, single vs distributed."""
    result = ExperimentResult(
        "fig13",
        "R-GMA Consumer tests, CPU idle and memory consumption",
        "concurrent connections",
        "CPU idle % / memory MB",
    )
    for n, run in sorted(single.items()):
        if run.oom:
            continue
        vm = run.vmstat["hydra1"]
        result.add_point("CPU", n, vm.mean_cpu_idle_percent)
        result.add_point("MEM", n, vm.memory_consumption_mb)
    for n, run in sorted(dist.items()):
        if run.oom:
            continue
        idles = [v.mean_cpu_idle_percent for v in run.vmstat.values()]
        mems = [v.memory_consumption_mb for v in run.vmstat.values()]
        result.add_point("CPU2", n, sum(idles) / len(idles))
        result.add_point("MEM2", n, sum(mems) / len(mems))
    return result


def fig14(dist: dict[int, RgmaRunResult]) -> ExperimentResult:
    """Fig 14: distributed percentiles, 400-1000 connections."""
    result = ExperimentResult(
        "fig14",
        "R-GMA distributed network tests, percentile of RTT",
        "percentile",
        "millisecond",
    )
    for n, run in sorted(dist.items()):
        if run.oom:
            continue
        for pct, ms in percentile_curve(run.rtts):
            result.add_point(str(n), pct, ms)
    return result


def fig10(scale: Optional[Scale] = None, seed: int = 1) -> ExperimentResult:
    """Fig 10: Primary + Secondary Producer percentiles (50-200 conns).

    "The delays were up to 35 seconds" — the SP's deliberate 30 s republish
    delay plus the normal pipeline.
    """
    result = ExperimentResult(
        "fig10",
        "R-GMA Primary and Secondary Producer tests, percentile of RTT",
        "percentile",
        "second",
    )
    for n in SECONDARY_SWEEP:
        run = rgma_run(n, secondary_producer=True, scale=scale, seed=seed)
        for pct, ms in percentile_curve(run.rtts):
            result.add_point(str(n), pct, ms / 1e3)  # the paper plots seconds
        result.note(
            f"{n} connections: mean RTT {run.mean_rtt_ms / 1e3:.1f} s "
            f"(loss {run.loss_rate:.2%})"
        )
    return result


def warmup_loss(scale: Optional[Scale] = None, seed: int = 1) -> ExperimentResult:
    """§III.F: '400 generators publishing data without waiting for the
    server to warm up ... loss rate was 0.17%'."""
    result = ExperimentResult(
        "rgma_warmup_loss",
        "R-GMA loss without producer warm-up wait",
        "case",
        "loss rate",
    )
    no_warm = rgma_run(400, skip_warmup=True, scale=scale, seed=seed)
    warm = rgma_run(400, skip_warmup=False, scale=scale, seed=seed)
    # Loss is counted over the WHOLE run (the paper counted every message,
    # including the pre-discovery ones).
    rows = []
    for label, run in (("no warm-up", no_warm), ("10-20 s warm-up", warm)):
        total_stats = rtt_stats(run.book, since=0.0)
        rows.append(
            [label, total_stats.sent, total_stats.count,
             f"{total_stats.loss_rate:.4%}"]
        )
        result.add_point(label, 0, total_stats.loss_rate)
    result.table = (["case", "sent", "received", "loss rate"], rows)
    result.note(
        "paper: 72,000 sent, 71,876 received, 0.17% loss without warm-up; "
        "zero loss with the 10-20 s warm-up wait"
    )
    return result
