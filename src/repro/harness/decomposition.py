"""Fig 15: RTT decomposition — RTT = PRT + PT + SRT — built on telemetry spans.

"PRT is Publishing Response Time... PT is Process Time, which is how long it
takes to process data in the middleware.  SRT is Subscribing Response Time...
As we can see from the graph, both Publishing and Subscribing Response Time
of R-GMA are short, but the Process Time is very long.  ...  The three
phases of NaradaBrokering are very short" (§III.F.2).

The figure plots cumulative time at the four phase boundaries
(before_sending, after_sending, before_receiving, after_receiving).

Both figure builders run the middlewares inside a telemetry session — the
caller's active session when one is installed (e.g. the runner's ``--trace``
flag), a private one otherwise — and read the decomposition off the span
pipeline.  Span endpoint phases are copied from the record book, so the
numbers are identical to the legacy :func:`repro.core.metrics.decompose`
path; the spans additionally carry broker-interior marks and fault-window
annotations for the trace exporters.
"""

from __future__ import annotations

import contextlib
from typing import Optional

from repro.core import ExperimentResult
from repro.harness.narada_experiments import narada_run
from repro.harness.plog_experiments import plog_run
from repro.harness.rgma_experiments import rgma_run
from repro.harness.scale import Scale
from repro.telemetry import Telemetry
from repro.telemetry import context as tel_context
from repro.telemetry.spans import phase_breakdown

PHASES = ("before_sending", "after_sending", "before_receiving", "after_receiving")


def _session(label: str):
    """The active telemetry session, or a private one for this figure.

    Returns ``(telemetry, context_manager)``; the context manager installs
    the private session only when no outer one is active, so the runner's
    ``--trace`` session sees these runs' spans too.
    """
    active = tel_context.current()
    if active is not None:
        return active, contextlib.nullcontext()
    tel = Telemetry(label)
    return tel, tel_context.session(tel)


def _decomposition_rows(result, tel, runs):
    """Add cumulative series + table rows for ``(label, run, middleware)``."""
    rows = []
    breakdowns = {}
    for label, run, middleware in runs:
        spans = tel.spans_for_book(run.book)
        phases = phase_breakdown(spans, since=run.measure_since)
        breakdowns[label] = phases
        cumulative = [
            0.0,
            phases.prt_ms,
            phases.prt_ms + phases.pt_ms,
            phases.prt_ms + phases.pt_ms + phases.srt_ms,
        ]
        for x, value in enumerate(cumulative):
            result.add_point(label, x, value)
        rows.append(
            [label, phases.prt_ms, phases.pt_ms, phases.srt_ms, phases.rtt_ms]
        )
    result.table = (
        ["system", "PRT (ms)", "PT (ms)", "SRT (ms)", "RTT (ms)"],
        rows,
    )
    result.meta["phases"] = PHASES
    return breakdowns


def fig15(
    scale: Optional[Scale] = None,
    seed: int = 1,
    connections: int = 400,
) -> ExperimentResult:
    """Instrumented runs of both paper systems at a common moderate load."""
    result = ExperimentResult(
        "fig15",
        "RTT decomposition (cumulative ms at each phase boundary)",
        "phase",
        "millisecond",
    )
    tel, ctx = _session("fig15")
    with ctx:
        narada = narada_run(connections, scale=scale, seed=seed)
        rgma = rgma_run(connections, scale=scale, seed=seed)
    breakdowns = _decomposition_rows(
        result,
        tel,
        (("RGMA", rgma, "rgma"), ("Narada", narada, "narada")),
    )
    rgma_phases = breakdowns["RGMA"]
    narada_phases = breakdowns["Narada"]
    if rgma_phases.pt_ms > 3 * max(rgma_phases.prt_ms, rgma_phases.srt_ms):
        result.note(
            "R-GMA: PRT and SRT are short; the Process Time dominates "
            "(the delay lives in the Primary Producer and Consumer, §III.F.2)"
        )
    result.note(
        f"Narada total RTT {narada_phases.rtt_ms:.1f} ms vs "
        f"R-GMA {rgma_phases.rtt_ms:.0f} ms"
    )
    return result


def fig15_federation(
    scale: Optional[Scale] = None,
    seed: int = 1,
    n_brokers: int = 7,
) -> ExperimentResult:
    """Fig 15 on the federated path: RTT = PRT + PT + SRT for an event that
    climbs a broker tree, decomposed from the same span pipeline.

    PT here is multi-hop — the spans carry one ``broker_in``/``broker_out``
    mark per federation broker traversed, so the trace exporters can break
    the middleware residency down per hop.
    """
    from repro.harness.federation_experiments import federation_run

    result = ExperimentResult(
        "fig15_federation",
        "RTT decomposition on the federated tree (cumulative ms per phase)",
        "phase",
        "millisecond",
    )
    tel, ctx = _session("fig15_federation")
    with ctx:
        run = federation_run(n_brokers, scale=scale, seed=seed)
    breakdowns = _decomposition_rows(
        result, tel, (("Federation", run, "federation"),)
    )
    phases = breakdowns["Federation"]
    spans = tel.spans_for_book(run.book)
    max_hops = max((s.hops for s in spans), default=0)
    result.note(
        f"{run.n_brokers} brokers: PT {phases.pt_ms:.1f} ms covers up to "
        f"{max_hops} broker-side marks on one span (root-bound tree path); "
        f"loss {run.loss_rate:.2%}"
    )
    return result


def fig15_edge(
    scale: Optional[Scale] = None,
    seed: int = 1,
    n_clients: int = 2000,
    n_gateways: int = 2,
    middleware: str = "narada",
) -> ExperimentResult:
    """Fig 15 with the long-poll gateway hop in the path.

    PT here includes the edge tier: spans carry ``edge_in`` (event reaches
    the gateway off its pooled upstream connection), ``parked`` (how long
    the winning long-poll request had been parked) and ``edge_out`` (the
    HTTP response leaves), so the gateway dwell — ``edge_out - edge_in`` —
    is separable from the native middleware transit.
    """
    from repro.harness.edge_experiments import edge_point

    result = ExperimentResult(
        "fig15_edge",
        "RTT decomposition through the edge gateway hop (cumulative ms)",
        "phase",
        "millisecond",
    )
    tel, ctx = _session("fig15_edge")
    with ctx:
        run = edge_point(
            n_clients, n_gateways, middleware, scale=scale, seed=seed
        )
    breakdowns = _decomposition_rows(
        result, tel, (("Edge", run, middleware),)
    )
    phases = breakdowns["Edge"]
    spans = tel.spans_for_book(run.book)
    dwells = [
        (s.phases["edge_out"] - s.phases["edge_in"]) * 1e3
        for s in spans
        if "edge_in" in s.phases and "edge_out" in s.phases
        and s.phases["created"] >= run.measure_since
    ]
    mean_dwell = sum(dwells) / len(dwells) if dwells else 0.0
    result.note(
        f"{middleware} + edge tier ({run.n_gateways} gateways, "
        f"{run.n_clients} clients): gateway dwell (edge_in -> edge_out) "
        f"averages {mean_dwell:.2f} ms of the {phases.pt_ms:.1f} ms PT; "
        f"{run.pooled_connections} pooled upstream connection(s) carry the "
        "whole population"
    )
    result.meta["gateway_dwell_ms"] = mean_dwell
    result.meta["middleware"] = middleware
    return result


def fig15_threeway(
    scale: Optional[Scale] = None,
    seed: int = 1,
    connections: int = 400,
) -> ExperimentResult:
    """Fig 15 extended: RTT = PRT + PT + SRT for all three middlewares,
    every decomposition read off the same span pipeline."""
    result = ExperimentResult(
        "fig15_threeway",
        "RTT decomposition, three middlewares (cumulative ms per phase)",
        "phase",
        "millisecond",
    )
    tel, ctx = _session("fig15_threeway")
    with ctx:
        rgma = rgma_run(connections, scale=scale, seed=seed)
        narada = narada_run(connections, scale=scale, seed=seed)
        plog = plog_run(connections, scale=scale, seed=seed)
    _decomposition_rows(
        result,
        tel,
        (
            ("RGMA", rgma, "rgma"),
            ("Narada", narada, "narada"),
            ("Plog", plog, "plog"),
        ),
    )
    result.note(
        "plog PRT is the produce acknowledgement round trip, which includes "
        "the producer's linger; the ack races the consumer's woken fetch, so "
        "PT (ack-to-arrival) can be small or slightly negative — batching "
        "buys fan-in scalability with tens of milliseconds of added latency, "
        "far inside the §I ~5 s budget"
    )
    return result
