"""Fig 15: RTT decomposition — RTT = PRT + PT + SRT.

"PRT is Publishing Response Time... PT is Process Time, which is how long it
takes to process data in the middleware.  SRT is Subscribing Response Time...
As we can see from the graph, both Publishing and Subscribing Response Time
of R-GMA are short, but the Process Time is very long.  ...  The three
phases of NaradaBrokering are very short" (§III.F.2).

The figure plots cumulative time at the four phase boundaries
(before_sending, after_sending, before_receiving, after_receiving).
"""

from __future__ import annotations

from typing import Optional

from repro.core import ExperimentResult, decompose
from repro.harness.narada_experiments import narada_run
from repro.harness.rgma_experiments import rgma_run
from repro.harness.scale import Scale

PHASES = ("before_sending", "after_sending", "before_receiving", "after_receiving")


def fig15(
    scale: Optional[Scale] = None,
    seed: int = 1,
    connections: int = 400,
) -> ExperimentResult:
    """Instrumented runs of both systems at a common moderate load."""
    result = ExperimentResult(
        "fig15",
        "RTT decomposition (cumulative ms at each phase boundary)",
        "phase",
        "millisecond",
    )
    narada = narada_run(connections, scale=scale, seed=seed)
    rgma = rgma_run(connections, scale=scale, seed=seed)
    rows = []
    for label, run in (("RGMA", rgma), ("Narada", narada)):
        phases = decompose(run.book, since=run.measure_since)
        cumulative = [
            0.0,
            phases.prt_ms,
            phases.prt_ms + phases.pt_ms,
            phases.prt_ms + phases.pt_ms + phases.srt_ms,
        ]
        for x, (phase, value) in enumerate(zip(PHASES, cumulative)):
            result.add_point(label, x, value)
        rows.append(
            [label, phases.prt_ms, phases.pt_ms, phases.srt_ms, phases.rtt_ms]
        )
    result.table = (
        ["system", "PRT (ms)", "PT (ms)", "SRT (ms)", "RTT (ms)"],
        rows,
    )
    rgma_phases = decompose(rgma.book, since=rgma.measure_since)
    narada_phases = decompose(narada.book, since=narada.measure_since)
    if rgma_phases.pt_ms > 3 * max(rgma_phases.prt_ms, rgma_phases.srt_ms):
        result.note(
            "R-GMA: PRT and SRT are short; the Process Time dominates "
            "(the delay lives in the Primary Producer and Consumer, §III.F.2)"
        )
    result.note(
        f"Narada total RTT {narada_phases.rtt_ms:.1f} ms vs "
        f"R-GMA {rgma_phases.rtt_ms:.0f} ms"
    )
    return result
