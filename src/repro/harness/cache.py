"""Content-addressed on-disk tier for the sweep cache.

Sweeps are pure functions of ``(kind, scale, seed, fault plan)`` — and of
the code that computes them.  Sweep kinds with extra shape parameters fold
them into the key: federation sweeps carry one ``(broker_count,
FederationParams.cache_key())`` pair per point — depth, fan-out and routing
mode — so a cached broadcast-mode sweep can never satisfy a routed-mode
lookup and trees of different shape never alias.  Fleet sweeps fold
``(n, middleware, mode, cohort_size, service-model key)`` per point the
same way, so an aggregate-mode entry can never satisfy a per-process
lookup, a different cohort partition never aliases, and recalibrating a
service model invalidates its sweeps.  The disk tier therefore keys every entry by
those inputs **plus a code-version salt**: a digest over every ``*.py``
file under ``src/repro``.  Editing any source file changes the salt, so a
stale cache can never satisfy a lookup from newer code; there is nothing
to remember to invalidate.

Entries live under ``$REPRO_CACHE_DIR`` (default ``.repro-cache/`` in the
working directory) as pickle files named by the SHA-256 of their key.
Writes go through a temp file + ``os.replace`` so concurrent processes
(e.g. ``--jobs N`` workers warming the same sweep) never observe a torn
entry; unreadable or truncated entries are treated as misses and removed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from contextlib import suppress
from pathlib import Path
from typing import Any, Optional

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_code_salt: Optional[str] = None


def cache_root() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


def code_salt() -> str:
    """Digest of every ``repro`` source file (computed once per process)."""
    global _code_salt
    if _code_salt is None:
        package_root = Path(__file__).resolve().parents[1]  # src/repro
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_salt = digest.hexdigest()
    return _code_salt


class DiskCache:
    """Pickle-per-entry cache addressed by hashed key tuples."""

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else cache_root()

    def path_for(self, key: tuple) -> Path:
        payload = repr((code_salt(),) + key).encode()
        return self.root / (hashlib.sha256(payload).hexdigest() + ".pkl")

    def get(self, key: tuple) -> Optional[Any]:
        """The cached value, or ``None`` on a miss (or a corrupt entry)."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            # Torn write from a killed process, incompatible pickle, ...:
            # drop the entry and recompute.
            path.unlink(missing_ok=True)
            return None

    def put(self, key: tuple, value: Any) -> None:
        path = self.path_for(key)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            with suppress(OSError):
                os.unlink(tmp_name)
            raise

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                with suppress(OSError):
                    path.unlink()
                    removed += 1
            for path in self.root.glob("*.tmp"):
                with suppress(OSError):
                    path.unlink()
        return removed

