"""Run-scale presets.

Simulated statistics converge long before the paper's 30 wall-clock minutes,
so the default ``bench`` scale publishes for ~80 simulated seconds per
generator and compresses the creation stagger.  Connection counts are left
untouched at either scale — they are the experiments' independent variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Scale:
    """Time-compression preset for harness runs."""

    name: str
    #: Per-generator publishing duration (paper: 1800 s).
    duration: float
    #: Generator creation stagger for Narada tests (paper: 0.5 s).
    creation_interval_narada: float
    #: Generator creation stagger for R-GMA tests (paper: 1.0 s).
    creation_interval_rgma: float
    #: Warm-up sleep range (paper: 10-20 s).
    warmup: tuple[float, float]
    #: Extra simulated time to let in-flight messages drain at the end.
    drain: float

    @classmethod
    def bench(cls) -> "Scale":
        return cls(
            name="bench",
            duration=80.0,
            creation_interval_narada=0.02,
            creation_interval_rgma=0.03,
            warmup=(4.0, 8.0),
            drain=20.0,
        )

    @classmethod
    def smoke(cls) -> "Scale":
        """Tiny preset for unit tests of the harness itself."""
        return cls(
            name="smoke",
            duration=30.0,
            creation_interval_narada=0.01,
            creation_interval_rgma=0.01,
            warmup=(1.0, 2.0),
            drain=10.0,
        )

    @classmethod
    def full(cls) -> "Scale":
        """The paper's parameters."""
        return cls(
            name="full",
            duration=1800.0,
            creation_interval_narada=0.5,
            creation_interval_rgma=1.0,
            warmup=(10.0, 20.0),
            drain=40.0,
        )

    @classmethod
    def from_env(cls) -> "Scale":
        """``REPRO_FULL=1`` selects the paper-scale preset."""
        return cls.full() if os.environ.get("REPRO_FULL") == "1" else cls.bench()

    @classmethod
    def named(cls, name: str) -> "Scale":
        try:
            return {"bench": cls.bench, "smoke": cls.smoke, "full": cls.full}[name]()
        except KeyError:
            raise ValueError(f"unknown scale {name!r}") from None

    def cache_key(self) -> tuple:
        """Every field, as a stable tuple for sweep-cache keys.

        The preset ``name`` alone is not enough once cache entries persist
        on disk: a hand-built ``Scale`` (tests do this) may reuse a preset
        name with different timings, and two such scales must never share a
        cache entry.
        """
        return (
            self.name,
            self.duration,
            self.creation_interval_narada,
            self.creation_interval_rgma,
            self.warmup,
            self.drain,
        )
