"""The ``fleet_scaling`` experiment: 10^3 -> 10^6 publishers, three ways.

Sweeps the vectorized cohort fleet engine
(:mod:`repro.powergrid.fleet_engine`) across publisher counts far beyond
the paper's thousands, on all three middleware service models.  Aggregate
mode carries the full 10^3 -> 10^6 sweep; per-process mode re-runs the two
smallest points as the exactness reference — the agreement check
(:func:`repro.powergrid.fleet_engine.verify_agreement`) asserts identical
message/loss/duplicate counts and matching P50/P95/P99, and the headline
is the wall-clock-per-publisher ratio between the modes at the largest
common point.  A zoom check additionally re-runs one aggregate point with
a mid-fleet cohort carved back out to per-process simulation, which must
change nothing at all.
"""

from __future__ import annotations

from typing import Optional

from repro.core import ExperimentResult
from repro.harness.parallel import map_points
from repro.harness.scale import Scale
from repro.powergrid.fleet_engine import (
    DEFAULT_COHORT_SIZE,
    FLEET_MIDDLEWARES,
    SERVICE_MODELS,
    FleetOutcome,
    FleetRunParams,
    run_fleet_point,
    verify_agreement,
)

#: Aggregate-mode publisher counts (the ROADMAP's million-source target).
FLEET_SWEEP = (1_000, 10_000, 100_000, 1_000_000)

#: Per-process reference points (the modes must agree here exactly; the
#: largest is the speedup denominator).
PROCESS_SWEEP = (1_000, 10_000)

#: Cohort width for the aggregate sweeps.
COHORT_SIZE = DEFAULT_COHORT_SIZE

#: Zoom check: this id range of the smallest aggregate point re-runs as
#: per-process simulation inside the otherwise-aggregate run.
ZOOM_RANGE = (128, 192)

#: Quantile tolerance for aggregate-vs-process agreement (bit-identical in
#: practice; the tolerance covers quantile interpolation only).
AGREEMENT_RTOL = 1e-9


def sweep_points(scale: Scale, mode: str) -> tuple[int, ...]:
    """Publisher counts for one sweep leg (same at every scale preset —
    the preset moves the per-point duration, not the axis)."""
    return FLEET_SWEEP if mode == "aggregate" else PROCESS_SWEEP


def sweep_cache_key(
    points: tuple[int, ...],
    middleware: str,
    mode: str,
    cohort_size: int,
) -> tuple:
    """The cohort/aggregation half of a fleet sweep-cache key.

    One ``(n, middleware, mode, cohort_size, service-model key)`` tuple per
    point, so an aggregate-mode entry can never satisfy a per-process
    lookup, a different cohort partition never aliases, and recalibrating a
    service model invalidates its cached sweeps (same contract as the
    federation topology folding — see ``repro.harness.cache``).
    """
    model_key = SERVICE_MODELS[middleware].cache_key()
    return tuple(
        (n, middleware, mode, cohort_size, model_key) for n in points
    )


def run_fleet_sweep(
    points: tuple[int, ...],
    middleware: str,
    mode: str,
    scale: Scale,
    seed: int = 1,
    jobs: int = 1,
    cohort_size: int = COHORT_SIZE,
) -> dict[int, FleetOutcome]:
    """One sweep leg: ``{n_publishers: FleetOutcome}`` in point order."""
    kwargs_list = [
        dict(
            middleware=middleware,
            n_publishers=n,
            scale=scale,
            seed=seed,
            mode=mode,
            cohort_size=cohort_size,
        )
        for n in points
    ]
    results = map_points(
        "repro.powergrid.fleet_engine", "run_fleet_point", kwargs_list, jobs
    )
    return dict(zip(points, results))


def zoom_check(
    middleware: str,
    n_publishers: int,
    scale: Scale,
    seed: int = 1,
    zoom: tuple[int, int] = ZOOM_RANGE,
) -> tuple[FleetOutcome, FleetOutcome]:
    """Aggregate vs aggregate-with-zoomed-cohort; verifies and returns both."""
    plain = run_fleet_point(
        middleware, n_publishers, scale, seed=seed, mode="aggregate"
    )
    zoomed = run_fleet_point(
        middleware, n_publishers, scale, seed=seed, mode="aggregate",
        zoom=zoom,
    )
    verify_agreement(plain, zoomed, rtol=AGREEMENT_RTOL)
    return plain, zoomed


def fleet_scaling(
    aggregate: dict[str, dict[int, FleetOutcome]],
    process: dict[str, dict[int, FleetOutcome]],
    scale: Scale,
    seed: int = 1,
    zoom: Optional[tuple[int, int]] = ZOOM_RANGE,
) -> ExperimentResult:
    """Build the ``fleet_scaling`` result from the two sweep legs.

    Verifies aggregate-vs-process agreement at every common point (raises
    on any mismatch — the CI gate) and runs the zoom escape-hatch check on
    the smallest point of every middleware.
    """
    result = ExperimentResult(
        "fleet_scaling",
        "Vectorized cohort fleets: 10^3 -> 10^6 publishers",
        "publishers",
        "events/s (emitted, wall-clock)",
    )
    headers = [
        "middleware", "mode", "publishers", "published", "lost", "dup",
        "p50 ms", "p99 ms", "wall s", "us/publisher", "events/s",
    ]
    rows: list[list] = []
    speedups: dict[str, float] = {}
    agreement: dict[str, dict[int, bool]] = {}
    for mw in FLEET_MIDDLEWARES:
        agg = aggregate.get(mw, {})
        proc = process.get(mw, {})
        for n, outcome in sorted(agg.items()):
            result.add_point(f"{mw} aggregate", n, outcome.events_per_s)
            rows.append(_row(mw, outcome))
        for n, outcome in sorted(proc.items()):
            result.add_point(f"{mw} process", n, outcome.events_per_s)
            rows.append(_row(mw, outcome))
        common = sorted(set(agg) & set(proc))
        agreement[mw] = {}
        for n in common:
            verify_agreement(agg[n], proc[n], rtol=AGREEMENT_RTOL)
            agreement[mw][n] = True
        if common:
            n = common[-1]
            speedups[mw] = (
                proc[n].wall_per_publisher_s / agg[n].wall_per_publisher_s
            )
    zoom_ok: dict[str, bool] = {}
    if zoom is not None:
        for mw in FLEET_MIDDLEWARES:
            agg = aggregate.get(mw, {})
            if not agg:
                continue
            smallest = min(agg)
            zoom_check(mw, smallest, scale, seed=seed, zoom=zoom)
            zoom_ok[mw] = True
    result.table = (headers, rows)
    result.meta["aggregate"] = aggregate
    result.meta["process"] = process
    result.meta["speedup_per_publisher"] = speedups
    result.meta["agreement"] = agreement
    result.meta["zoom_ok"] = zoom_ok
    result.meta["params"] = {
        n: FleetRunParams.from_scale(scale, n).cache_key()
        for n in FLEET_SWEEP
    }
    for mw, speedup in sorted(speedups.items()):
        n = max(set(aggregate.get(mw, {})) & set(process.get(mw, {})))
        result.note(
            f"{mw}: aggregate mode is {speedup:,.0f}x cheaper per publisher "
            f"than per-process at n={n:,}"
        )
    biggest = max(
        (o for sweeps in aggregate.values() for o in sweeps.values()),
        key=lambda o: o.n_publishers,
        default=None,
    )
    if biggest is not None:
        result.note(
            f"largest aggregate point: {biggest.n_publishers:,} publishers, "
            f"{biggest.published:,} messages in {biggest.wall_s:.2f}s wall "
            f"({biggest.events_per_s:,.0f} events/s, "
            f"{biggest.ticks} cohort ticks, "
            f"{biggest.events_scheduled} kernel events)"
        )
    if agreement and all(v for per_mw in agreement.values() for v in per_mw.values()):
        result.note(
            "aggregate vs per-process: identical message/loss/duplicate "
            "counts and matching P50/P95/P99 at every common point; "
            "zoomed cohorts change nothing"
        )
    return result


def _row(mw: str, o: FleetOutcome) -> list:
    return [
        mw,
        o.mode,
        o.n_publishers,
        o.published,
        o.lost,
        o.duplicates,
        f"{o.p50_ms:.3f}",
        f"{o.p99_ms:.3f}",
        f"{o.wall_s:.3f}",
        f"{o.wall_per_publisher_s * 1e6:.1f}",
        f"{o.events_per_s:,.0f}",
    ]
