"""Chaos experiments: the three middlewares under identical fault schedules.

The paper measures the systems on a quiet, isolated LAN; a production grid
is not quiet.  These experiments replay one deterministic
:class:`~repro.faults.FaultPlan` against all three middlewares — same
schedule, same seed, same workload — and ask two questions the paper could
not: how much monitoring data is *lost* under a fault window, and how long
delivery takes to *recover* once the fault clears (visible as the RTT tail,
p95–p100).

Every fault plan is a pure function of the measurement window and every
random draw comes from the kernel's named RNG streams, so one seed gives
bit-identical results run to run — asserting that is part of the test
suite (``tests/harness/test_chaos.py``).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core import ExperimentResult, percentile_curve
from repro.core.metrics import soft_realtime_compliance
from repro.faults import RetryPolicy, named_plan
from repro.harness.scale import Scale
from repro.plog import PlogConfig

#: Shared load for the chaos legs: big enough that a fault window covers
#: hundreds of in-flight messages, small enough for the smoke preset.
CHAOS_CONNECTIONS = 200

#: The recovery policy under test: ~6.3 s of backoff budget, which fits
#: inside every scale preset's drain window.
CHAOS_RETRY = RetryPolicy(retries=6, backoff=0.1)

#: Failover legs use a shorter budget so a broker outage *outlasts* blind
#: retrying — that is what makes rerouting to a surviving broker visible.
FAILOVER_RETRY = RetryPolicy(retries=4, backoff=0.1)


def _tail(rtts: Any) -> tuple[float, float, float]:
    """(p95, p99, p100) in milliseconds; NaNs when nothing was measured."""
    if rtts is None or len(rtts) == 0:
        return float("nan"), float("nan"), float("nan")
    return tuple(float(np.percentile(rtts, p) * 1e3) for p in (95, 99, 100))


def chaos_threeway(
    scale: Optional[Scale] = None,
    seed: int = 1,
    fault_plan: str = "loss_burst",
    connections: int = CHAOS_CONNECTIONS,
) -> ExperimentResult:
    """Loss and RTT tail for all three middlewares under one fault plan.

    Four legs: Narada over acked UDP with publisher retry, R-GMA over its
    TCP servlet pipeline, and the partitioned log over acked UDP twice —
    once with the producer's one-shot legacy behaviour and once with
    retry-with-backoff — so the cost of the fault and the value of the
    recovery machinery are both on the table.
    """
    from repro.harness.narada_experiments import narada_run
    from repro.harness.plog_experiments import plog_run
    from repro.harness.rgma_experiments import rgma_run

    scale = scale or Scale.from_env()
    template = named_plan(fault_plan)

    legs: list[tuple[str, Any]] = []
    legs.append((
        "Narada (UDP, retry)",
        narada_run(
            connections,
            transport_kind="udp",
            scale=scale,
            seed=seed,
            fault_plan=template,
            fleet_retry=CHAOS_RETRY,
        ),
    ))
    legs.append((
        "R-GMA (TCP)",
        rgma_run(connections, scale=scale, seed=seed, fault_plan=template),
    ))
    plog_base = PlogConfig(consumer_recovery=True)
    legs.append((
        "Plog (UDP, no retry)",
        plog_run(
            connections,
            transport_kind="udp",
            scale=scale,
            seed=seed,
            config=plog_base,
            fault_plan=template,
        ),
    ))
    legs.append((
        "Plog (UDP, retry)",
        plog_run(
            connections,
            transport_kind="udp",
            scale=scale,
            seed=seed,
            config=plog_base.with_(producer_retry=CHAOS_RETRY),
            fault_plan=template,
        ),
    ))

    result = ExperimentResult(
        "chaos_threeway",
        f"Three middlewares under the {fault_plan!r} fault plan",
        "percentile",
        "millisecond",
    )
    rows = []
    for label, run in legs:
        p95, p99, p100 = _tail(run.rtts)
        compliant, frac_late, _loss = soft_realtime_compliance(
            run.book, deadline_s=5.0, since=run.measure_since
        )
        rows.append([
            label, run.sent, run.received, f"{run.loss_rate:.4%}",
            p95, p99, p100, f"{frac_late:.4%}",
            "PASS" if compliant else "FAIL",
        ])
        for pct, ms in percentile_curve(run.rtts):
            result.add_point(label, pct, ms)
    result.table = (
        ["system", "sent", "received", "loss rate", "p95 (ms)", "p99 (ms)",
         "p100 (ms)", "late/lost", "SLA (<=5s, <0.5%)"],
        rows,
    )
    plog_retry_run = legs[3][1]
    for line in plog_retry_run.fault_log:
        result.note(f"fault: {line}")
    result.note(
        f"plog producer recovery: {plog_retry_run.producer_retries} retries, "
        f"{plog_retry_run.producer_reconnects} reconnects, "
        f"{plog_retry_run.consumer_recoveries} consumer recoveries, "
        f"{plog_retry_run.duplicates} duplicate deliveries absorbed"
    )
    result.note(
        "retry-with-backoff converts producer-side datagram loss into "
        "latency (at-least-once + receiver dedup); Narada's push delivery "
        "cannot recover broker-to-subscriber datagrams, and R-GMA's "
        "TCP/servlet pipeline never loses to the burst but pays its usual "
        "second-scale process time"
    )
    result.meta["fault_plan"] = fault_plan
    result.meta["runs"] = {label: run for label, run in legs}
    return result


def chaos_broker_failover(
    scale: Optional[Scale] = None,
    seed: int = 1,
    fault_plan: str = "broker_outage",
    connections: int = CHAOS_CONNECTIONS,
) -> ExperimentResult:
    """Crash-and-restart one of four plog brokers; compare recovery modes.

    Three legs, same outage: legacy one-shot clients, retry-with-backoff
    against the dead broker, and retry plus failover (reroute to partitions
    owned by surviving brokers).  The RTT tail doubles as the recovery
    clock: records held up by the outage surface at p100.
    """
    from repro.harness.plog_experiments import plog_run

    scale = scale or Scale.from_env()
    template = named_plan(fault_plan)
    base = PlogConfig()

    configs = [
        ("one-shot (no recovery)", base),
        (
            "retry",
            base.with_(producer_retry=FAILOVER_RETRY, consumer_recovery=True),
        ),
        (
            "retry + failover",
            base.with_(
                producer_retry=FAILOVER_RETRY,
                consumer_recovery=True,
                failover=True,
            ),
        ),
    ]
    result = ExperimentResult(
        "chaos_broker_failover",
        "Plog broker crash/restart: one-shot vs retry vs retry+failover",
        "percentile",
        "millisecond",
    )
    rows = []
    last_run = None
    for label, config in configs:
        run = plog_run(
            connections,
            n_brokers=4,
            scale=scale,
            seed=seed,
            config=config,
            fault_plan=template,
        )
        last_run = run
        p95, p99, p100 = _tail(run.rtts)
        rows.append([
            label, run.sent, run.received, f"{run.loss_rate:.4%}",
            p100, run.producer_retries, run.producer_reconnects,
            run.consumer_recoveries, run.duplicates,
        ])
        for pct, ms in percentile_curve(run.rtts):
            result.add_point(label, pct, ms)
    result.table = (
        ["mode", "sent", "received", "loss rate", "p100 (ms)", "retries",
         "reconnects", "consumer recoveries", "duplicates"],
        rows,
    )
    if last_run is not None:
        for line in last_run.fault_log:
            result.note(f"fault: {line}")
    result.note(
        "partition logs are durable, so records appended before the crash "
        "are served after restart; failover reroutes *new* records to "
        "surviving brokers instead of burning the retry budget against a "
        "dead one — loss should fall at each step left to right"
    )
    result.meta["fault_plan"] = fault_plan
    return result
