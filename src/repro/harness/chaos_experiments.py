"""Chaos experiments: the three middlewares under identical fault schedules.

The paper measures the systems on a quiet, isolated LAN; a production grid
is not quiet.  These experiments replay one deterministic
:class:`~repro.faults.FaultPlan` against all three middlewares — same
schedule, same seed, same workload — and ask two questions the paper could
not: how much monitoring data is *lost* under a fault window, and how long
delivery takes to *recover* once the fault clears (visible as the RTT tail,
p95–p100).

Every fault plan is a pure function of the measurement window and every
random draw comes from the kernel's named RNG streams, so one seed gives
bit-identical results run to run — asserting that is part of the test
suite (``tests/harness/test_chaos.py``).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core import ExperimentResult, percentile_curve
from repro.core.metrics import soft_realtime_compliance
from repro.faults import RetryPolicy, named_plan
from repro.harness.scale import Scale
from repro.plog import ACKS_ALL, PlogConfig

#: Shared load for the chaos legs: big enough that a fault window covers
#: hundreds of in-flight messages, small enough for the smoke preset.
CHAOS_CONNECTIONS = 200

#: The recovery policy under test: ~6.3 s of backoff budget, which fits
#: inside every scale preset's drain window.
CHAOS_RETRY = RetryPolicy(retries=6, backoff=0.1)

#: Failover legs use a shorter budget so a broker outage *outlasts* blind
#: retrying — that is what makes rerouting to a surviving broker visible.
FAILOVER_RETRY = RetryPolicy(retries=4, backoff=0.1)

#: The durability ladder needs the opposite: a budget that *outlasts* the
#: gauntlet's capped ~6 s broker outage (un-jittered worst case ~16 s of
#: backoff with the 5 s per-delay ceiling), because zero loss is asserted —
#: giving up is losing.
DURABILITY_RETRY = RetryPolicy(retries=8, backoff=0.1)


def _tail(rtts: Any) -> tuple[float, float, float]:
    """(p95, p99, p100) in milliseconds; NaNs when nothing was measured."""
    if rtts is None or len(rtts) == 0:
        return float("nan"), float("nan"), float("nan")
    return tuple(float(np.percentile(rtts, p) * 1e3) for p in (95, 99, 100))


def chaos_threeway(
    scale: Optional[Scale] = None,
    seed: int = 1,
    fault_plan: str = "loss_burst",
    connections: int = CHAOS_CONNECTIONS,
) -> ExperimentResult:
    """Loss and RTT tail for all three middlewares under one fault plan.

    Four legs: Narada over acked UDP with publisher retry, R-GMA over its
    TCP servlet pipeline, and the partitioned log over acked UDP twice —
    once with the producer's one-shot legacy behaviour and once with
    retry-with-backoff — so the cost of the fault and the value of the
    recovery machinery are both on the table.
    """
    from repro.harness.narada_experiments import narada_run
    from repro.harness.plog_experiments import plog_run
    from repro.harness.rgma_experiments import rgma_run

    scale = scale or Scale.from_env()
    template = named_plan(fault_plan)

    legs: list[tuple[str, Any]] = []
    legs.append((
        "Narada (UDP, retry)",
        narada_run(
            connections,
            transport_kind="udp",
            scale=scale,
            seed=seed,
            fault_plan=template,
            fleet_retry=CHAOS_RETRY,
        ),
    ))
    legs.append((
        "R-GMA (TCP)",
        rgma_run(connections, scale=scale, seed=seed, fault_plan=template),
    ))
    plog_base = PlogConfig(consumer_recovery=True)
    legs.append((
        "Plog (UDP, no retry)",
        plog_run(
            connections,
            transport_kind="udp",
            scale=scale,
            seed=seed,
            config=plog_base,
            fault_plan=template,
        ),
    ))
    legs.append((
        "Plog (UDP, retry)",
        plog_run(
            connections,
            transport_kind="udp",
            scale=scale,
            seed=seed,
            config=plog_base.with_(producer_retry=CHAOS_RETRY),
            fault_plan=template,
        ),
    ))

    result = ExperimentResult(
        "chaos_threeway",
        f"Three middlewares under the {fault_plan!r} fault plan",
        "percentile",
        "millisecond",
    )
    rows = []
    for label, run in legs:
        p95, p99, p100 = _tail(run.rtts)
        compliant, frac_late, _loss = soft_realtime_compliance(
            run.book, deadline_s=5.0, since=run.measure_since
        )
        rows.append([
            label, run.sent, run.received, f"{run.loss_rate:.4%}",
            run.duplicates, p95, p99, p100, f"{frac_late:.4%}",
            "PASS" if compliant else "FAIL",
        ])
        for pct, ms in percentile_curve(run.rtts):
            result.add_point(label, pct, ms)
    result.table = (
        ["system", "sent", "received", "loss rate", "duplicates",
         "p95 (ms)", "p99 (ms)", "p100 (ms)", "late/lost",
         "SLA (<=5s, <0.5%)"],
        rows,
    )
    plog_retry_run = legs[3][1]
    for line in plog_retry_run.fault_log:
        result.note(f"fault: {line}")
    result.note(
        f"plog producer recovery: {plog_retry_run.producer_retries} retries, "
        f"{plog_retry_run.producer_reconnects} reconnects, "
        f"{plog_retry_run.consumer_recoveries} consumer recoveries, "
        f"{plog_retry_run.duplicates} duplicate deliveries absorbed"
    )
    result.note(
        "retry-with-backoff converts producer-side datagram loss into "
        "latency (at-least-once + receiver dedup); Narada's push delivery "
        "cannot recover broker-to-subscriber datagrams, and R-GMA's "
        "TCP/servlet pipeline never loses to the burst but pays its usual "
        "second-scale process time"
    )
    result.meta["fault_plan"] = fault_plan
    result.meta["runs"] = {label: run for label, run in legs}
    return result


def chaos_durability(
    scale: Optional[Scale] = None,
    seed: int = 1,
    fault_plan: str = "durability_gauntlet",
    connections: int = CHAOS_CONNECTIONS,
) -> ExperimentResult:
    """Exactly-once parity: both broker paths through the gauntlet.

    Three legs under one schedule — broker crash + consumer crash + client
    partition inside the measured window:

    * **Narada durable (TCP)** — durable subscriptions with broker-side
      retain-until-acknowledged replay (surviving the crash via the
      durable store), supervised subscribers that reconnect and
      re-subscribe, publisher retry, and a ``(gen_id, seq)`` receiver
      index that turns replay into exactly-once processing.
    * **R-GMA (TCP)** — the control: its pipeline has no broker or
      consumer process to kill (those fault legs are skipped against it),
      and TCP carries it through the partition.
    * **Plog idempotent (TCP, RF=2, acks=all)** — idempotent producers
      (broker-side (pid, seq) dedup across retries and leader failover),
      generation-fenced offset commits, consumer recovery, and a shared
      sink index absorbing post-rebalance replay.

    The verdict per leg is *zero loss AND zero duplicates* — stricter than
    the §I SLA, and the CI durability gate.
    """
    from repro.harness.narada_experiments import narada_run
    from repro.harness.plog_experiments import plog_run
    from repro.harness.rgma_experiments import rgma_run

    scale = scale or Scale.from_env()
    template = named_plan(fault_plan)

    legs: list[tuple[str, Any]] = []
    legs.append((
        "Narada durable (TCP, retry)",
        narada_run(
            connections,
            transport_kind="tcp",
            scale=scale,
            seed=seed,
            fault_plan=template,
            fleet_retry=DURABILITY_RETRY,
            durable_receivers=True,
        ),
    ))
    legs.append((
        "R-GMA (TCP)",
        rgma_run(connections, scale=scale, seed=seed, fault_plan=template),
    ))
    legs.append((
        "Plog idempotent (TCP, RF=2, acks=all)",
        plog_run(
            connections,
            n_brokers=4,
            scale=scale,
            seed=seed,
            config=PlogConfig(
                replication_factor=2,
                acks=ACKS_ALL,
                idempotent=True,
                producer_retry=DURABILITY_RETRY,
                consumer_recovery=True,
            ),
            fault_plan=template,
            dedup_receivers=True,
        ),
    ))

    result = ExperimentResult(
        "chaos_durability",
        f"Durable delivery parity under the {fault_plan!r} fault plan",
        "percentile",
        "millisecond",
    )
    rows = []
    for label, run in legs:
        _p95, _p99, p100 = _tail(run.rtts)
        redeliveries = getattr(run, "redeliveries", 0)
        clean = run.loss_rate == 0.0 and run.duplicates == 0
        rows.append([
            label, run.sent, run.received, f"{run.loss_rate:.2%}",
            run.duplicates, redeliveries, p100,
            "PASS" if clean else "FAIL",
        ])
        for pct, ms in percentile_curve(run.rtts):
            result.add_point(label, pct, ms)
    result.table = (
        ["system", "sent", "received", "loss rate", "duplicates",
         "redeliveries", "p100 (ms)", "0 loss AND 0 dup"],
        rows,
    )
    narada_leg = legs[0][1]
    plog_leg = legs[2][1]
    for line in narada_leg.fault_log:
        result.note(f"fault (narada): {line}")
    for line in plog_leg.fault_log:
        result.note(f"fault (plog): {line}")
    result.note(
        f"narada durable machinery: {narada_leg.messages_replayed} retained "
        f"copies replayed, {narada_leg.redeliveries} redeliveries absorbed "
        f"by the (gen_id, seq) index, {narada_leg.receiver_reconnects} "
        "supervised reconnects"
    )
    result.note(
        f"plog exactly-once machinery: {plog_leg.duplicate_batches} "
        f"duplicate produce batches discarded by (pid, seq) dedup, "
        f"{plog_leg.redeliveries} post-rebalance redeliveries absorbed by "
        f"the sink index, {plog_leg.fenced_commits} stale-generation "
        f"commits fenced, {plog_leg.elections} leader elections, "
        f"{plog_leg.coordinator_elections} coordinator elections "
        f"({plog_leg.acked_lost} of {plog_leg.acked} acked records lost)"
    )
    result.note(
        "same at-least-once + dedup construction on both broker paths: "
        "Narada retains delivered-but-unacked copies for durable replay "
        "(only the JMS ack retires a copy), plog retries produce batches "
        "under an idempotent (pid, seq) window — in both, the replayed "
        "stream is collapsed back to exactly-once at the edge"
    )
    result.meta["fault_plan"] = fault_plan
    result.meta["runs"] = {label: run for label, run in legs}
    return result


def chaos_broker_failover(
    scale: Optional[Scale] = None,
    seed: int = 1,
    fault_plan: str = "broker_outage",
    connections: int = CHAOS_CONNECTIONS,
) -> ExperimentResult:
    """Crash-and-restart one of four plog brokers; compare recovery modes.

    Four legs, same outage: legacy one-shot clients, retry-with-backoff
    against the dead broker, retry plus failover (reroute to partitions
    owned by surviving brokers), and replication (RF=2, ``acks=all``) with
    *no* producer retry at all — the leader election makes the outage
    invisible to durability: zero acknowledged records lost.  The RTT tail
    doubles as the recovery clock: records held up by the outage surface
    at p100.
    """
    from repro.harness.plog_experiments import plog_run

    scale = scale or Scale.from_env()
    template = named_plan(fault_plan)
    base = PlogConfig()

    configs = [
        ("one-shot (no recovery)", base),
        (
            "retry",
            base.with_(producer_retry=FAILOVER_RETRY, consumer_recovery=True),
        ),
        (
            "retry + failover",
            base.with_(
                producer_retry=FAILOVER_RETRY,
                consumer_recovery=True,
                failover=True,
            ),
        ),
        (
            "replicated (RF=2, acks=all, one-shot)",
            base.with_(
                replication_factor=2,
                acks=ACKS_ALL,
                consumer_recovery=True,
            ),
        ),
    ]
    result = ExperimentResult(
        "chaos_broker_failover",
        "Plog broker crash/restart: one-shot vs retry vs failover vs RF=2",
        "percentile",
        "millisecond",
    )
    rows = []
    last_run = None
    replicated_run = None
    for label, config in configs:
        run = plog_run(
            connections,
            n_brokers=4,
            scale=scale,
            seed=seed,
            config=config,
            fault_plan=template,
        )
        last_run = run
        if config.replication_factor > 1:
            replicated_run = run
        p95, p99, p100 = _tail(run.rtts)
        rows.append([
            label, run.sent, run.received, f"{run.loss_rate:.4%}",
            run.acked_lost, run.elections, p100, run.producer_retries,
            run.producer_reconnects, run.consumer_recoveries, run.duplicates,
        ])
        for pct, ms in percentile_curve(run.rtts):
            result.add_point(label, pct, ms)
    result.table = (
        ["mode", "sent", "received", "loss rate", "acked lost", "elections",
         "p100 (ms)", "retries", "reconnects", "consumer recoveries",
         "duplicates"],
        rows,
    )
    if last_run is not None:
        for line in last_run.fault_log:
            result.note(f"fault: {line}")
    if replicated_run is not None:
        result.note(
            f"replicated leg: {replicated_run.elections} leader elections, "
            f"{replicated_run.coordinator_elections} coordinator elections, "
            f"{replicated_run.isr_shrinks} ISR shrinks / "
            f"{replicated_run.isr_expands} expands, "
            f"{replicated_run.acked_lost} acknowledged records lost "
            f"(of {replicated_run.acked} acked)"
        )
    result.note(
        "partition logs are durable, so records appended before the crash "
        "are served after restart; failover reroutes *new* records to "
        "surviving brokers instead of burning the retry budget against a "
        "dead one; with RF=2 and acks=all a surviving in-sync replica is "
        "elected leader, so no acknowledged record is lost even without "
        "producer retry"
    )
    result.meta["fault_plan"] = fault_plan
    result.meta["replicated_run"] = replicated_run
    return result


def chaos_replication(
    scale: Optional[Scale] = None,
    seed: int = 1,
    fault_plan: str = "broker_outage",
    connections: int = CHAOS_CONNECTIONS,
) -> ExperimentResult:
    """Durability ladder under a broker crash: RF and acks swept upward.

    Four legs, same outage, all one-shot producers except the last:
    unreplicated baseline (records in the dead broker's partitions are
    unreadable until restart), RF=2 with ``acks=1`` (leader election keeps
    partitions *available* but the ack is a lie — records acked by the old
    leader and not yet replicated can vanish), RF=2 with ``acks=all`` (the
    headline property: zero acknowledged records lost), and RF=3 with
    ``acks=all`` plus producer retry (total loss also driven to ~zero —
    the unacked window is retried against the new leader).
    """
    from repro.harness.plog_experiments import plog_run

    scale = scale or Scale.from_env()
    template = named_plan(fault_plan)
    base = PlogConfig(consumer_recovery=True)

    configs = [
        ("RF=1 (one-shot)", base),
        (
            "RF=2, acks=1 (one-shot)",
            base.with_(replication_factor=2),
        ),
        (
            "RF=2, acks=all (one-shot)",
            base.with_(replication_factor=2, acks=ACKS_ALL),
        ),
        (
            "RF=3, acks=all + retry",
            base.with_(
                replication_factor=3,
                acks=ACKS_ALL,
                min_insync_replicas=2,
                producer_retry=CHAOS_RETRY,
            ),
        ),
    ]
    result = ExperimentResult(
        "chaos_replication",
        "Plog replication ladder under a broker crash: RF x acks",
        "percentile",
        "millisecond",
    )
    rows = []
    runs: dict[str, Any] = {}
    for label, config in configs:
        run = plog_run(
            connections,
            n_brokers=4,
            scale=scale,
            seed=seed,
            config=config,
            fault_plan=template,
        )
        runs[label] = run
        p95, p99, p100 = _tail(run.rtts)
        rows.append([
            label, run.sent, run.acked, run.received,
            f"{run.loss_rate:.4%}", run.acked_lost, run.elections,
            run.isr_shrinks, run.isr_expands, p100, run.producer_retries,
        ])
        for pct, ms in percentile_curve(run.rtts):
            result.add_point(label, pct, ms)
    result.table = (
        ["mode", "sent", "acked", "received", "loss rate", "acked lost",
         "elections", "ISR shrinks", "ISR expands", "p100 (ms)", "retries"],
        rows,
    )
    sample = next(iter(runs.values()))
    for line in sample.fault_log:
        result.note(f"fault: {line}")
    acked_all = runs["RF=2, acks=all (one-shot)"]
    result.note(
        f"acks=all leg: {acked_all.acked_lost} of {acked_all.acked} "
        f"acknowledged records lost across {acked_all.elections} leader "
        "elections — the ack is only sent once every in-sync replica holds "
        "the record, so a single broker death cannot unsay it"
    )
    result.note(
        "acks=1 acks at the leader alone: records in the replication-lag "
        "window are acknowledged, then die with the leader — availability "
        "without the durability half of the contract"
    )
    result.meta["fault_plan"] = fault_plan
    result.meta["runs"] = runs
    return result


def chaos_adaptive_backoff(
    scale: Optional[Scale] = None,
    seed: int = 1,
    fault_plan: str = "latency_spike",
    connections: int = CHAOS_CONNECTIONS,
) -> ExperimentResult:
    """Fixed vs RTT-adaptive retry backoff under a latency spike.

    Both legs run the same retry budget with a deliberately tight
    ``produce_ack_timeout`` (60 ms — an SLA-tuned producer on a quiet
    LAN where acks normally take single-digit milliseconds).  The spike
    pushes ack round trips past that clock: the fixed policy then times
    out *every* attempt — including the retries — so each batch burns its
    whole retry budget and appends duplicates for the full fault window.
    The adaptive policy estimates the ack RTT (TCP-style SRTT/RTTVAR with
    RFC 6298 timeout backoff), so after a timeout or two its RTO climbs
    above the new RTT and the spurious retries stop.
    """
    from repro.harness.plog_experiments import plog_run

    scale = scale or Scale.from_env()
    template = named_plan(fault_plan)
    base = PlogConfig(consumer_recovery=True, produce_ack_timeout=0.06)

    configs = [
        (
            "fixed backoff",
            base.with_(producer_retry=CHAOS_RETRY),
        ),
        (
            "adaptive backoff (SRTT/RTTVAR)",
            base.with_(
                producer_retry=RetryPolicy(
                    retries=CHAOS_RETRY.retries,
                    backoff=CHAOS_RETRY.backoff,
                    adaptive=True,
                )
            ),
        ),
    ]
    result = ExperimentResult(
        "chaos_adaptive_backoff",
        "Plog producer retry: fixed vs RTT-adaptive backoff under latency",
        "percentile",
        "millisecond",
    )
    rows = []
    runs = {}
    for label, config in configs:
        run = plog_run(
            connections,
            transport_kind="udp",
            scale=scale,
            seed=seed,
            config=config,
            fault_plan=template,
        )
        runs[label] = run
        p95, p99, p100 = _tail(run.rtts)
        rows.append([
            label, run.sent, run.received, f"{run.loss_rate:.4%}",
            p95, p99, p100, run.producer_retries, run.duplicates,
        ])
        for pct, ms in percentile_curve(run.rtts):
            result.add_point(label, pct, ms)
    result.table = (
        ["policy", "sent", "received", "loss rate", "p95 (ms)", "p99 (ms)",
         "p100 (ms)", "retries", "duplicates"],
        rows,
    )
    sample = next(iter(runs.values()))
    for line in sample.fault_log:
        result.note(f"fault: {line}")
    fixed = runs["fixed backoff"]
    adaptive = runs["adaptive backoff (SRTT/RTTVAR)"]
    result.note(
        f"retries under the spike: fixed {fixed.producer_retries} "
        f"({fixed.duplicates} duplicates) vs adaptive "
        f"{adaptive.producer_retries} ({adaptive.duplicates} duplicates) — "
        "the RTO stretches with the observed ack RTT instead of firing on "
        "a constant clock"
    )
    result.meta["fault_plan"] = fault_plan
    result.meta["runs"] = runs
    return result
