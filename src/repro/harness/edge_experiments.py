"""Edge-tier experiments: gateway scaling and gateway-crash recovery.

Two building blocks:

* :func:`edge_point` — one run: a middleware deployment (Narada broker,
  R-GMA single-server site, or plog partitioned log) fed by a fixed
  publisher fleet, fronted by ``n_gateways`` :class:`EdgeGateway` nodes,
  polled by a client population of ``n_clients``.  The population is
  simulated as cohort-weighted poll processes (bounded process count at
  any scale — the gateway accounts parked memory per cohort weight), plus
  exactly one *stamping* client whose deliveries produce the RTT records.
* :func:`direct_point` — the no-edge baseline: the same publisher
  workload delivered to one native middleware subscriber.

The scaling headline: pooled upstream connections per broker stay
O(topics) — independent of the client population — while edge P99 RTT at
10k clients stays within a small factor of direct delivery.  The chaos
story (``edge_gateway_crash``): a gateway crash severs every parked poll,
clients fail over with a time cursor, and the surviving/restarted rings
replay the missed window exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core import ExperimentResult, RecordBook, rtt_stats
from repro.edge.client import EdgeClient
from repro.edge.config import EdgeConfig
from repro.edge.deployment import EdgeTier, gateway_node_names
from repro.edge.upstream import NaradaUpstream, PlogUpstream, RgmaUpstream
from repro.federation.deployment import FederationCluster
from repro.harness.scale import Scale
from repro.narada import Broker, NaradaConfig
from repro.plog import PlogConfig, PlogDeployment
from repro.powergrid import (
    FleetConfig,
    NaradaFleet,
    NaradaReceiver,
    PlogFleet,
    PlogReceiver,
    RgmaFleet,
    RgmaReceiver,
)
from repro.powergrid.workload import MONITORING_TOPIC
from repro.rgma import RGMADeployment
from repro.sim import Simulator
from repro.telemetry.context import current as _telemetry
from repro.transport.tcp import TcpTransport

EDGE_MIDDLEWARES = ("narada", "rgma", "plog")

#: (clients, gateways) grids.  The bench/smoke grid proves population
#: independence (5x the clients, same pooled connections); the full grid
#: runs the issue's 10k -> 1M sweep over gateways x{1, 4, 16}.
EDGE_SWEEP = ((2_000, 1), (10_000, 1), (2_000, 4), (10_000, 4))
EDGE_SWEEP_FULL = tuple(
    (clients, gateways)
    for gateways in (1, 4, 16)
    for clients in (10_000, 100_000, 1_000_000)
)

#: Publisher workload (fixed: the population under study is subscribers).
N_PUBLISHERS = 40
PUBLISH_INTERVAL = 2.0

#: Cohort poll processes per gateway (plus the one stamping client).
COHORTS_PER_GATEWAY = 4

BROKER_NODE = "hydra1"
NARADA_PORT = 5045
CLIENT_NODES = ("ec0", "ec1", "ec2", "ec3")


def sweep_cache_key(
    points: tuple[tuple[int, int], ...],
    middleware: str,
    config: Optional[EdgeConfig] = None,
) -> tuple:
    """The topology half of an edge sweep-cache key.

    One ``(clients, gateways, middleware, EdgeConfig.cache_key())`` tuple
    per point, so a cached narada sweep never satisfies a plog lookup and
    a re-tuned gateway config invalidates cleanly (the FederationParams
    contract, applied to the client edge)."""
    cfg = (config or EdgeConfig()).cache_key()
    return tuple((c, g, middleware, cfg) for c, g in points)


@dataclass
class EdgeRunResult:
    """Everything one edge run produces."""

    middleware: str
    n_clients: int
    n_gateways: int
    book: RecordBook
    measure_since: float
    sent: int
    received: int
    mean_rtt_ms: float
    loss_rate: float
    rtt_p50_ms: float
    rtt_p99_ms: float
    rtts: Any  # np.ndarray of measured-window RTT seconds
    #: Pooled middleware connections held by the whole gateway tier at run
    #: end — the number that must stay O(topics), not O(clients).
    pooled_connections: int
    #: The no-edge equivalent: one middleware connection per client.
    baseline_connections: int
    #: Aggregated gateway stats.
    polls: int = 0
    long_polls_parked: int = 0
    polls_timed_out: int = 0
    polls_shed: int = 0
    catch_up_polls: int = 0
    truncated_reads: int = 0
    #: Stamping-client accounting (the exactly-once columns).
    client_received: int = 0
    client_redeliveries: int = 0
    client_duplicates: int = 0
    client_failovers: int = 0
    client_sheds: int = 0
    gateway_stats: dict[str, Any] = field(default_factory=dict)


@dataclass
class DirectRunResult:
    """The no-edge baseline: native middleware delivery."""

    middleware: str
    sent: int
    received: int
    mean_rtt_ms: float
    loss_rate: float
    rtt_p50_ms: float
    rtt_p99_ms: float
    rtts: Any


def _percentiles(rtts: Any) -> tuple[float, float]:
    if len(rtts) == 0:
        return float("nan"), float("nan")
    return (
        float(np.percentile(rtts, 50) * 1e3),
        float(np.percentile(rtts, 99) * 1e3),
    )


def _build_cluster(sim: Simulator, n_gateways: int) -> FederationCluster:
    names = tuple(f"hydra{i}" for i in range(1, 9))
    names += gateway_node_names(n_gateways)
    names += CLIENT_NODES
    return FederationCluster(sim, names)


def _build_middleware(
    sim: Simulator,
    cluster: FederationCluster,
    transport: TcpTransport,
    middleware: str,
    fleet_config: FleetConfig,
    book: RecordBook,
):
    """Deploy one middleware + its publisher fleet.

    Returns ``(topic, upstream, brokers, deployment)``: the topic string
    the edge tier subscribes, the upstream adapter factory, the
    fault-attachable broker list, and the deployment (for direct
    receivers)."""
    if middleware == "narada":
        config = NaradaConfig()
        broker = Broker(sim, cluster.node(BROKER_NODE), "broker1", config)
        broker.serve(transport, NARADA_PORT)
        fleet = NaradaFleet(
            sim,
            cluster,
            transport,
            [(BROKER_NODE, NARADA_PORT)] * len(fleet_config.client_nodes),
            fleet_config,
            book,
            config=config,
            topic=MONITORING_TOPIC,
        )
        fleet.start()
        upstream = NaradaUpstream(
            sim, transport, (BROKER_NODE, NARADA_PORT), config
        )
        return MONITORING_TOPIC.name, upstream, [broker], broker
    if middleware == "rgma":
        deployment = RGMADeployment.single_server(
            sim, cluster, node_name=BROKER_NODE, transport=transport
        )
        fleet = RgmaFleet(sim, cluster, deployment, fleet_config, book)
        fleet.start()
        upstream = RgmaUpstream(sim, deployment)
        return "gridmon", upstream, [], deployment
    if middleware == "plog":
        config = PlogConfig(partitions=8)
        deployment = PlogDeployment(
            sim, cluster, transport, broker_hosts=(BROKER_NODE,), config=config
        )
        deployment.serve()
        fleet = PlogFleet(sim, cluster, deployment, fleet_config, book)
        fleet.start()
        upstream = PlogUpstream(sim, deployment)
        return deployment.topic, upstream, list(deployment.brokers), deployment
    raise ValueError(f"unknown middleware {middleware!r}")


def _fleet_config(scale: Scale, stop_at: float) -> FleetConfig:
    return FleetConfig(
        n_generators=N_PUBLISHERS,
        publish_interval=PUBLISH_INTERVAL,
        creation_interval=scale.creation_interval_narada,
        warmup_min=scale.warmup[0],
        warmup_max=scale.warmup[1],
        duration=scale.duration,
        stop_at=stop_at,
        client_nodes=("hydra5", "hydra6", "hydra7", "hydra8"),
    )


def edge_point(
    n_clients: int,
    n_gateways: int,
    middleware: str = "narada",
    *,
    scale: Optional[Scale] = None,
    seed: int = 1,
    config: Optional[EdgeConfig] = None,
    fault_plan: Any = None,
    scenario: Any = None,
) -> EdgeRunResult:
    """One edge run: ``n_clients`` long-polling clients over ``n_gateways``
    gateways in front of ``middleware``.  ``scenario`` perturbs the
    publisher fleet's rates and merges its fault fragment into
    ``fault_plan``."""
    scale = scale or Scale.from_env()
    config = config or EdgeConfig()
    sim = Simulator(seed=seed)
    cluster = _build_cluster(sim, n_gateways)
    transport = TcpTransport(sim, cluster.lan)
    book = RecordBook()

    creation_span = N_PUBLISHERS * scale.creation_interval_narada
    measure_since = sim.now + creation_span + scale.warmup[1] + 4.0
    stop_at = measure_since + scale.duration
    fleet_config = _fleet_config(scale, stop_at)
    from repro.scenario.compiler import arm_scenario, merge_fault_plan

    fleet_config, compiled = arm_scenario(
        scenario, measure_since, scale.duration, fleet_config
    )
    topic, upstream, brokers, _deployment = _build_middleware(
        sim, cluster, transport, middleware, fleet_config, book
    )

    tier = EdgeTier(
        sim, cluster, transport, upstream, n_gateways, (topic,), config=config
    )
    tier.start()

    tel = _telemetry()
    if tel is not None:
        tel.sample_node(sim, cluster.node(BROKER_NODE), middleware=middleware)
        for gateway in tier.gateways:
            tel.sample_node(sim, gateway.node, middleware="edge")

    # Client population: one stamping client homed on gateway 0 plus
    # cohort-weighted load clients spread over gateways and client nodes.
    clients: list[EdgeClient] = []
    stamper = EdgeClient(
        sim,
        transport,
        cluster.node(CLIENT_NODES[0]),
        tier.addresses,
        topic,
        config=config,
        name="edge-stamper",
        home=0,
        weight=1.0,
        stamping=True,
        middleware_label=middleware,
    )
    clients.append(stamper)
    n_cohorts = COHORTS_PER_GATEWAY * n_gateways
    cohort_weight = max(0.0, (n_clients - 1) / n_cohorts)
    for k in range(n_cohorts):
        clients.append(
            EdgeClient(
                sim,
                transport,
                cluster.node(CLIENT_NODES[k % len(CLIENT_NODES)]),
                tier.addresses,
                topic,
                config=config,
                name=f"edge-cohort{k}",
                home=k % n_gateways,
                weight=cohort_weight,
                stamping=False,
            )
        )

    def start_clients() -> None:
        for client in clients:
            client.start()

    # Clients come up once the gateways are listening and subscribed.
    sim.call_at(sim.now + 1.0, start_clients)

    plan = (
        fault_plan(measure_since, scale.duration)
        if callable(fault_plan)
        else fault_plan
    )
    plan = merge_fault_plan(compiled, plan)
    if plan is not None and len(plan):
        from repro.faults import FaultScheduler

        # Gateways first: ``broker:0`` in a plan targets gateway 0 (the
        # stamping client's home), per the gateway_outage template.
        FaultScheduler(sim, plan).attach(
            lan=cluster.lan,
            cluster=cluster,
            brokers=list(tier.gateways) + brokers,
        )

    sim.run(until=stop_at + scale.drain)

    stats = rtt_stats(book, since=measure_since)
    rtts = book.rtts(since=measure_since)
    p50, p99 = _percentiles(rtts)
    if tel is not None:
        tel.observe_run(
            book,
            middleware=middleware,
            measure_since=measure_since,
            label=f"edge[{middleware},c{n_clients},g{n_gateways}]",
        )
    return EdgeRunResult(
        middleware=middleware,
        n_clients=n_clients,
        n_gateways=n_gateways,
        book=book,
        measure_since=measure_since,
        sent=stats.sent,
        received=stats.count,
        mean_rtt_ms=stats.mean_ms,
        loss_rate=stats.loss_rate,
        rtt_p50_ms=p50,
        rtt_p99_ms=p99,
        rtts=rtts,
        pooled_connections=tier.total_upstream_connections(),
        baseline_connections=n_clients,
        polls=sum(g.stats.polls_received for g in tier.gateways),
        long_polls_parked=sum(
            g.stats.long_polls_parked for g in tier.gateways
        ),
        polls_timed_out=sum(g.stats.polls_timed_out for g in tier.gateways),
        polls_shed=sum(g.stats.polls_shed for g in tier.gateways),
        catch_up_polls=sum(g.stats.catch_up_polls for g in tier.gateways),
        truncated_reads=sum(g.stats.truncated_reads for g in tier.gateways),
        client_received=stamper.stats.received,
        client_redeliveries=stamper.stats.redeliveries,
        client_duplicates=stamper.stats.duplicates,
        client_failovers=stamper.stats.failovers,
        client_sheds=stamper.stats.sheds,
        gateway_stats={
            g.name: {
                "polls": g.stats.polls_received,
                "parked_total": g.stats.long_polls_parked,
                "timed_out": g.stats.polls_timed_out,
                "shed": g.stats.polls_shed,
                "events_in": g.stats.events_in,
                "events_out": g.stats.events_out,
                "upstream_connections": g.upstream_connections,
            }
            for g in tier.gateways
        },
    )


def direct_point(
    middleware: str = "narada",
    *,
    scale: Optional[Scale] = None,
    seed: int = 1,
) -> DirectRunResult:
    """The no-edge baseline: identical publisher workload, one native
    middleware subscriber stamping the records."""
    scale = scale or Scale.from_env()
    sim = Simulator(seed=seed)
    cluster = _build_cluster(sim, n_gateways=0)
    transport = TcpTransport(sim, cluster.lan)
    book = RecordBook()

    creation_span = N_PUBLISHERS * scale.creation_interval_narada
    measure_since = sim.now + creation_span + scale.warmup[1] + 4.0
    stop_at = measure_since + scale.duration
    fleet_config = _fleet_config(scale, stop_at)
    _topic, _upstream, _brokers, deployment = _build_middleware(
        sim, cluster, transport, middleware, fleet_config, book
    )

    if middleware == "narada":
        receiver = NaradaReceiver(
            sim,
            cluster,
            transport,
            (BROKER_NODE, NARADA_PORT),
            CLIENT_NODES[0],
            MONITORING_TOPIC,
            selector=None,
        )
        sim.run_process(receiver.start())
    elif middleware == "rgma":
        receiver = RgmaReceiver(sim, cluster, deployment, CLIENT_NODES[0])
        sim.run_process(receiver.start())
    else:
        receiver = PlogReceiver(
            sim, cluster, deployment, CLIENT_NODES[0], group="direct.monitor"
        )
        receiver.start()

    sim.run(until=stop_at + scale.drain)

    stats = rtt_stats(book, since=measure_since)
    rtts = book.rtts(since=measure_since)
    p50, p99 = _percentiles(rtts)
    tel = _telemetry()
    if tel is not None:
        tel.observe_run(
            book,
            middleware=middleware,
            measure_since=measure_since,
            label=f"edge_direct[{middleware}]",
        )
    return DirectRunResult(
        middleware=middleware,
        sent=stats.sent,
        received=stats.count,
        mean_rtt_ms=stats.mean_ms,
        loss_rate=stats.loss_rate,
        rtt_p50_ms=p50,
        rtt_p99_ms=p99,
        rtts=rtts,
    )


# ----------------------------------------------------------------- the sweep

def run_edge_sweep(
    points: tuple[tuple[int, int], ...],
    middleware: str,
    scale: Optional[Scale] = None,
    seed: int = 1,
    jobs: int = 1,
    config: Optional[EdgeConfig] = None,
) -> dict[tuple[int, int], EdgeRunResult]:
    """Run every ``(clients, gateways)`` point, optionally fanned out."""
    from repro.harness.parallel import map_points

    results = map_points(
        __name__,
        "edge_point",
        [
            dict(
                n_clients=c,
                n_gateways=g,
                middleware=middleware,
                scale=scale,
                seed=seed,
                config=config,
            )
            for c, g in points
        ],
        jobs=jobs,
    )
    return dict(zip(points, results))


def edge_scaling(
    sweep: dict[tuple[int, int], EdgeRunResult],
    direct: DirectRunResult,
    middleware: str = "narada",
) -> ExperimentResult:
    """Clients vs RTT percentiles and per-broker connection counts — the
    pooling headline against the no-edge baseline."""
    result = ExperimentResult(
        "edge_scaling",
        f"Edge gateway tier over {middleware}: clients 10k+ on pooled "
        "broker connections",
        "clients",
        "RTT (ms) / connections",
    )
    headers = [
        "clients",
        "gateways",
        "edge p50/p99 (ms)",
        "direct p50/p99 (ms)",
        "loss",
        "pooled conns",
        "no-edge conns",
        "parked",
        "shed",
    ]
    rows = []
    for (c, g), run in sorted(sweep.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        result.add_point(f"edge_p99_ms[g={g}]", c, run.rtt_p99_ms)
        result.add_point(f"pooled_connections[g={g}]", c, run.pooled_connections)
        rows.append(
            [
                c,
                g,
                f"{run.rtt_p50_ms:.1f}/{run.rtt_p99_ms:.1f}",
                f"{direct.rtt_p50_ms:.1f}/{direct.rtt_p99_ms:.1f}",
                f"{run.loss_rate:.2%}",
                run.pooled_connections,
                run.baseline_connections,
                run.long_polls_parked,
                run.polls_shed,
            ]
        )
    result.table = (headers, rows)

    by_gateways: dict[int, list[EdgeRunResult]] = {}
    for (c, g), run in sweep.items():
        by_gateways.setdefault(g, []).append(run)
    for g, runs in sorted(by_gateways.items()):
        runs = sorted(runs, key=lambda r: r.n_clients)
        if len(runs) >= 2:
            lo, hi = runs[0], runs[-1]
            result.note(
                f"{g} gateway(s): clients x{hi.n_clients / lo.n_clients:.0f} "
                f"({lo.n_clients} -> {hi.n_clients}), pooled connections "
                f"{lo.pooled_connections} -> {hi.pooled_connections} "
                "(population-independent, O(topics)) vs "
                f"{hi.baseline_connections} no-edge"
            )
    sample = min(
        (r for r in sweep.values()), key=lambda r: abs(r.n_clients - 10_000)
    )
    if direct.rtt_p99_ms > 0:
        result.note(
            f"edge P99 {sample.rtt_p99_ms:.1f} ms at {sample.n_clients} "
            f"clients = {sample.rtt_p99_ms / direct.rtt_p99_ms:.2f}x direct "
            f"{middleware} delivery ({direct.rtt_p99_ms:.1f} ms)"
        )
    result.meta["middleware"] = middleware
    result.meta["pooled_connections"] = {
        f"{c}x{g}": run.pooled_connections for (c, g), run in sorted(sweep.items())
    }
    result.meta["edge_p99_ms"] = {
        f"{c}x{g}": run.rtt_p99_ms for (c, g), run in sorted(sweep.items())
    }
    result.meta["loss"] = {
        f"{c}x{g}": run.loss_rate for (c, g), run in sorted(sweep.items())
    }
    result.meta["direct_p99_ms"] = direct.rtt_p99_ms
    result.meta["max_clients"] = max(c for c, _ in sweep)
    result.meta["max_pooled"] = max(r.pooled_connections for r in sweep.values())
    return result


def edge_gateway_crash(
    runs: dict[str, EdgeRunResult],
) -> ExperimentResult:
    """Gateway crash mid-window: dropped long-polls, failover, catch-up
    replay — loss and application-duplicate columns must both be zero."""
    result = ExperimentResult(
        "edge_gateway_crash",
        "Gateway crash: severed long-polls, time-cursor failover, ring replay",
        "middleware",
        "percent",
    )
    headers = [
        "middleware",
        "sent",
        "delivered",
        "loss",
        "dups",
        "redeliveries",
        "failovers",
        "timeouts/shed",
    ]
    rows = []
    for middleware, run in runs.items():
        duplicates_rate = run.client_duplicates / max(1, run.sent)
        result.add_point("loss", middleware, run.loss_rate)
        result.add_point("duplicates", middleware, duplicates_rate)
        rows.append(
            [
                middleware,
                run.sent,
                run.received,
                f"{run.loss_rate:.2%}",
                f"{duplicates_rate:.2%}",
                run.client_redeliveries,
                run.client_failovers,
                f"{run.polls_timed_out}/{run.polls_shed}",
            ]
        )
    result.table = (headers, rows)
    worst_loss = max(r.loss_rate for r in runs.values())
    worst_dups = max(r.client_duplicates for r in runs.values())
    total_redeliveries = sum(r.client_redeliveries for r in runs.values())
    result.note(
        f"worst loss {worst_loss:.2%}, {worst_dups} application duplicates "
        f"({total_redeliveries} redeliveries suppressed by cursor dedup) — "
        "every in-window message delivered exactly once through crash + "
        "failover + catch-up"
    )
    result.meta["loss"] = {m: r.loss_rate for m, r in runs.items()}
    result.meta["duplicates"] = {m: r.client_duplicates for m, r in runs.items()}
    result.meta["failovers"] = {m: r.client_failovers for m, r in runs.items()}
    return result


#: Load used by the gateway-crash chaos run: small enough to smoke quickly,
#: two gateways so the stamping client has somewhere to fail over to.
CRASH_CLIENTS = 500
CRASH_GATEWAYS = 2


def run_gateway_crash(
    scale: Optional[Scale] = None,
    seed: int = 1,
    fault_plan: str = "gateway_outage",
) -> ExperimentResult:
    """Run the gateway-crash chaos scenario over all three middlewares."""
    from repro.faults.plan import named_plan

    template = named_plan(fault_plan)
    runs = {
        middleware: edge_point(
            CRASH_CLIENTS,
            CRASH_GATEWAYS,
            middleware,
            scale=scale,
            seed=seed,
            fault_plan=template,
        )
        for middleware in EDGE_MIDDLEWARES
    }
    result = edge_gateway_crash(runs)
    result.meta["fault_plan"] = fault_plan
    return result
