"""Scenario experiments: one grid day, three middlewares, one scorecard.

``scenario_threeway`` replays one :mod:`repro.scenario` script — correlated
workload bursts *and* the infrastructure faults the same grid events
produce — against all three middlewares with identical seed and scale, and
scores each leg against the §I soft-real-time SLA: deadline-miss %, loss %,
duplicate %, and during-burst vs steady-state P99.  ``scenario_edge_storm``
drives the same script through the edge long-poll tier in front of each
middleware, asking whether the gateway fan-out holds the SLA when the grid
misbehaves.

Legs are independent simulations, so ``--jobs`` fans them out over
processes via :func:`repro.harness.parallel.map_points`; every leg function
here is module-level and takes only picklable arguments (scenario *names*,
not objects), and every number in the scorecard is rendered at fixed
precision, so one seed gives byte-identical scorecards, serial or parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core import ExperimentResult, percentile_curve
from repro.faults import RetryPolicy, named_plan
from repro.harness.scale import Scale
from repro.plog import ACKS_ALL, PlogConfig
from repro.scenario import (
    LegScore,
    burst_windows,
    named_scenario,
    score_leg,
    scorecard,
)

#: Shared load for the threeway legs: big enough that a regional burst
#: covers hundreds of in-flight messages, small enough for smoke.
SCENARIO_CONNECTIONS = 200

#: Publisher recovery for the Narada leg (same budget as the chaos legs).
SCENARIO_RETRY = RetryPolicy(retries=6, backoff=0.1)

#: The threeway legs, in scorecard order.
THREEWAY_LEGS = ("narada", "rgma", "plog")

#: Edge-storm population: long-poll clients / gateways per middleware leg.
EDGE_CLIENTS = 2000
EDGE_GATEWAYS = 2


@dataclass
class LegOutcome:
    """One leg's scorecard row plus its plot/annotation payload."""

    score: LegScore
    rtts: Any  # np.ndarray, measured-window RTT seconds
    fault_log: list[str]


def _score(
    label: str,
    run: Any,
    scenario_name: str,
    scale: Scale,
    duplicates: int,
) -> LegOutcome:
    """Score a finished run against the scenario's burst windows.

    The template is re-resolved with this run's *own* measurement window —
    warmup differs per middleware, so each leg's bursts sit at different
    absolute times but identical positions relative to its window.
    """
    concrete = named_scenario(scenario_name)(run.measure_since, scale.duration)
    score = score_leg(
        label,
        run.book,
        measure_since=run.measure_since,
        stop_at=run.measure_since + scale.duration,
        burst=burst_windows(concrete),
        duplicates=duplicates,
    )
    return LegOutcome(
        score=score,
        rtts=run.rtts,
        fault_log=list(getattr(run, "fault_log", ())),
    )


def threeway_leg(
    middleware: str,
    scenario_name: str,
    scale: Optional[Scale] = None,
    seed: int = 1,
    fault_plan_name: Optional[str] = None,
    connections: int = SCENARIO_CONNECTIONS,
) -> LegOutcome:
    """One middleware under one scenario (module-level: ``--jobs`` pickles it)."""
    scale = scale or Scale.from_env()
    template = named_scenario(scenario_name)
    fault_template = named_plan(fault_plan_name) if fault_plan_name else None
    if middleware == "narada":
        from repro.harness.narada_experiments import narada_run

        run = narada_run(
            connections,
            transport_kind="udp",
            scale=scale,
            seed=seed,
            scenario=template,
            fault_plan=fault_template,
            fleet_retry=SCENARIO_RETRY,
        )
        label = "Narada (UDP, retry)"
    elif middleware == "rgma":
        from repro.harness.rgma_experiments import rgma_run

        run = rgma_run(
            connections,
            scale=scale,
            seed=seed,
            scenario=template,
            fault_plan=fault_template,
        )
        label = "R-GMA (TCP)"
    elif middleware == "plog":
        from repro.harness.plog_experiments import plog_run

        # TCP + acks=all + one-shot producer: nothing is retried blind, so
        # the receivers must absorb zero duplicates even mid-burst — the
        # scorecard's shape gate.
        run = plog_run(
            connections,
            scale=scale,
            seed=seed,
            config=PlogConfig(acks=ACKS_ALL, consumer_recovery=True),
            scenario=template,
            fault_plan=fault_template,
        )
        label = "Plog (TCP, acks=all)"
    else:
        raise ValueError(f"unknown threeway leg {middleware!r}")
    return _score(label, run, scenario_name, scale, run.duplicates)


def edge_leg(
    middleware: str,
    scenario_name: str,
    scale: Optional[Scale] = None,
    seed: int = 1,
    fault_plan_name: Optional[str] = None,
    n_clients: int = EDGE_CLIENTS,
    n_gateways: int = EDGE_GATEWAYS,
) -> LegOutcome:
    """The same scenario through the edge tier in front of ``middleware``."""
    from repro.harness.edge_experiments import edge_point

    scale = scale or Scale.from_env()
    run = edge_point(
        n_clients,
        n_gateways,
        middleware,
        scale=scale,
        seed=seed,
        scenario=named_scenario(scenario_name),
        fault_plan=named_plan(fault_plan_name) if fault_plan_name else None,
    )
    label = f"edge/{middleware} ({n_clients}c, {n_gateways}g)"
    return _score(label, run, scenario_name, scale, run.client_duplicates)


def _build_result(
    experiment_id: str,
    title: str,
    outcomes: list[LegOutcome],
    scenario_name: str,
    fault_plan_name: Optional[str],
) -> ExperimentResult:
    result = ExperimentResult(experiment_id, title, "percentile", "millisecond")
    scores = [o.score for o in outcomes]
    headers, rows = scorecard(scores)
    result.table = (list(headers), [list(r) for r in rows])
    for outcome in outcomes:
        for pct, ms in percentile_curve(outcome.rtts):
            result.add_point(outcome.score.label, pct, ms)
        for line in outcome.fault_log:
            result.note(f"fault[{outcome.score.label}]: {line}")
    result.meta["scenario"] = scenario_name
    result.meta["fault_plan"] = fault_plan_name
    result.meta["scores"] = {s.label: s.to_dict() for s in scores}
    result.meta["scorecard"] = [list(r) for r in rows]
    return result


def threeway_outcomes(
    scale: Optional[Scale] = None,
    seed: int = 1,
    scenario: str = "storm_front",
    fault_plan: Optional[str] = None,
    jobs: int = 1,
    connections: int = SCENARIO_CONNECTIONS,
) -> list[LegOutcome]:
    """The three scored legs (the runner's cacheable sweep unit)."""
    from repro.harness.parallel import map_points

    scale = scale or Scale.from_env()
    return map_points(
        __name__,
        "threeway_leg",
        [
            dict(
                middleware=m,
                scenario_name=scenario,
                scale=scale,
                seed=seed,
                fault_plan_name=fault_plan,
                connections=connections,
            )
            for m in THREEWAY_LEGS
        ],
        jobs=jobs,
    )


def scenario_threeway(
    scale: Optional[Scale] = None,
    seed: int = 1,
    scenario: str = "storm_front",
    fault_plan: Optional[str] = None,
    jobs: int = 1,
    connections: int = SCENARIO_CONNECTIONS,
    outcomes: Optional[list[LegOutcome]] = None,
) -> ExperimentResult:
    """One scenario script, three middlewares, one SLA scorecard."""
    if outcomes is None:
        outcomes = threeway_outcomes(
            scale=scale,
            seed=seed,
            scenario=scenario,
            fault_plan=fault_plan,
            jobs=jobs,
            connections=connections,
        )
    result = _build_result(
        "scenario_threeway",
        f"Scenario {scenario!r} on all three middlewares",
        outcomes,
        scenario,
        fault_plan,
    )
    result.note(
        "each leg's bursts sit at identical positions relative to its own "
        "measurement window; scores compare like with like"
    )
    return result


def edge_outcomes(
    scale: Optional[Scale] = None,
    seed: int = 1,
    scenario: str = "alarm_storm",
    fault_plan: Optional[str] = None,
    jobs: int = 1,
) -> list[LegOutcome]:
    """The three scored edge legs (the runner's cacheable sweep unit)."""
    from repro.harness.edge_experiments import EDGE_MIDDLEWARES
    from repro.harness.parallel import map_points

    scale = scale or Scale.from_env()
    return map_points(
        __name__,
        "edge_leg",
        [
            dict(
                middleware=m,
                scenario_name=scenario,
                scale=scale,
                seed=seed,
                fault_plan_name=fault_plan,
            )
            for m in EDGE_MIDDLEWARES
        ],
        jobs=jobs,
    )


def scenario_edge_storm(
    scale: Optional[Scale] = None,
    seed: int = 1,
    scenario: str = "alarm_storm",
    fault_plan: Optional[str] = None,
    jobs: int = 1,
    outcomes: Optional[list[LegOutcome]] = None,
) -> ExperimentResult:
    """The scenario through the edge tier, per upstream middleware."""
    if outcomes is None:
        outcomes = edge_outcomes(
            scale=scale,
            seed=seed,
            scenario=scenario,
            fault_plan=fault_plan,
            jobs=jobs,
        )
    result = _build_result(
        "scenario_edge_storm",
        f"Scenario {scenario!r} through the edge tier",
        outcomes,
        scenario,
        fault_plan,
    )
    result.note(
        f"{EDGE_CLIENTS} long-poll clients over {EDGE_GATEWAYS} gateways "
        "per leg; duplicates counted at the stamping client"
    )
    return result


def scenario_cache_key(name: str) -> tuple:
    """Sweep-cache key fragment: the scenario's *structure*, not its name.

    Resolved with a unit window so edits to a library template (new event,
    changed multiplier) change the key and invalidate cached results.
    """
    return (name, named_scenario(name)(0.0, 1.0).cache_key())
