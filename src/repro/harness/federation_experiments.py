"""Federation experiments: topic-aware tree routing vs the broadcast DBN.

One building block per routing mode:

* :func:`federation_run` — the hierarchical broker tree of
  :mod:`repro.federation`: site publishers and a site-local subscriber at
  every broker, a control-room subscriber at the root, subscriptions
  propagated up as covering entries, events forwarded only down interested
  links;
* :func:`federation_broadcast_run` — the *same workload* against the
  modelled v1.1.3 DBN (a star of :class:`repro.narada.Broker` instances
  with ``broadcast_flaw=True``, built by the shared
  :func:`repro.narada.star_network` baseline), where every event floods
  every inter-broker link.

Both measure the same two things over the steady-state window: delivery
RTT percentiles at the control-room tier (the single clock: clients run on
their broker's node, the paper's same-node design) and **event messages
per inter-broker link**.  The headline is their growth with broker count —
per-link traffic stays ~flat (``O(log n)``) under topic-aware routing and
grows linearly under broadcast, at equal delivery guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

import numpy as np

from repro.core import ExperimentResult, RecordBook, rtt_stats
from repro.federation import (
    FederationController,
    FederationDeployment,
    FederationParams,
    FederationSitePublishers,
    FederationSubscriber,
    TreeTopology,
    site_topic,
)
from repro.harness.scale import Scale
from repro.jms.destination import Topic
from repro.narada import Broker, NaradaConfig, star_network
from repro.powergrid.generator import PowerGenerator
from repro.powergrid.payload import narada_map_message
from repro.sim import Simulator
from repro.telemetry.context import current as _telemetry
from repro.transport.base import EOF, ChannelClosed, MessageLost
from repro.transport.tcp import TcpTransport

#: Broker counts swept at fanout 2 (complete trees of depth 2, 3, 4, 5).
FEDERATION_SWEEP = (3, 7, 15)
FEDERATION_SWEEP_FULL = (3, 7, 15, 31)

#: Site workload: publishers per broker and their publishing interval.
PUBLISHERS_PER_BROKER = 6
PUBLISH_INTERVAL = 3.0

FANOUT = 2


def params_for(n_brokers: int, fanout: int, routing: str) -> FederationParams:
    """The :class:`FederationParams` describing one sweep point.

    Depth is derived from the (possibly left-packed) tree the point builds,
    so ``cache_key()`` carries (depth, fanout, routing) as the sweep-cache
    contract requires.
    """
    depth = TreeTopology(n_brokers, fanout).depth
    return FederationParams(fanout=fanout, depth=depth, routing=routing)


def sweep_cache_key(
    broker_counts: tuple[int, ...], fanout: int, routing: str
) -> tuple:
    """The topology half of a federation sweep-cache key.

    One ``(n, FederationParams.cache_key())`` pair per point: broker count
    disambiguates left-packed trees of equal depth, the params tuple folds
    in depth, fan-out and routing mode — so a cached broadcast-mode sweep
    can never satisfy a routed-mode lookup (see ``repro.harness.cache``).
    """
    return tuple(
        (n, params_for(n, fanout, routing).cache_key()) for n in broker_counts
    )


@dataclass
class FederationRunResult:
    """Everything one federation test run produces."""

    n_brokers: int
    routing: str
    book: RecordBook
    measure_since: float
    sent: int
    received: int
    mean_rtt_ms: float
    stddev_rtt_ms: float
    loss_rate: float
    rtt_p50_ms: float
    rtt_p99_ms: float
    rtts: Any  # np.ndarray of measured-window RTT seconds
    #: Event messages per directed inter-broker link over the measured
    #: window (every tree/star link appears, idle ones at 0).
    link_messages: dict[tuple[str, str], int]
    per_link_mean: float
    per_link_max: float
    control_messages: int = 0
    orphaned_up: int = 0
    reparents: int = 0
    converged: bool = True
    broker_stats: dict[str, Any] = field(default_factory=dict)


def _percentiles(rtts: Any) -> tuple[float, float]:
    if len(rtts) == 0:
        return float("nan"), float("nan")
    return (
        float(np.percentile(rtts, 50) * 1e3),
        float(np.percentile(rtts, 99) * 1e3),
    )


def _link_summary(
    totals: dict[tuple[str, str], int]
) -> tuple[float, float]:
    counts = list(totals.values())
    if not counts:
        return 0.0, 0.0
    return sum(counts) / len(counts), float(max(counts))


def federation_run(
    n_brokers: int,
    *,
    fanout: int = FANOUT,
    publishers_per_broker: int = PUBLISHERS_PER_BROKER,
    publish_interval: float = PUBLISH_INTERVAL,
    scale: Optional[Scale] = None,
    seed: int = 1,
    config: Optional[NaradaConfig] = None,
    fault_plan: Any = None,
    detect_interval: float = 1.0,
) -> FederationRunResult:
    """One routed-tree test: ``n_brokers`` federated brokers, each with a
    site publisher fleet and a site-local subscriber, plus the control-room
    subscriber at the root — measured in steady state.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan` or a template callable
    ``(measure_since, duration) -> FaultPlan``) arms link partitions /
    broker crashes against the tree; the :class:`FederationController`
    re-parents and re-converges routing during the run.
    """
    scale = scale or Scale.from_env()
    sim = Simulator(seed=seed)
    topology = TreeTopology(n_brokers, fanout)
    deployment = FederationDeployment(sim, topology, config=config)
    sim.run_process(deployment.start())
    controller = FederationController(
        sim, deployment, detect_interval=detect_interval
    )
    controller.start()

    tel = _telemetry()
    if tel is not None:
        tel.sample_node(sim, deployment.node(topology.root), middleware="federation")

    book = RecordBook()
    all_topics = tuple(site_topic(i) for i in range(n_brokers))
    control_room = FederationSubscriber(
        sim, deployment, topology.root, "control", all_topics, stamp_records=True
    )
    sim.run_process(control_room.start())
    site_subs = []
    for i, name in enumerate(topology.names):
        sub = FederationSubscriber(
            sim, deployment, name, f"site{i}", (site_topic(i),),
            stamp_records=False,
        )
        sim.run_process(sub.start())
        site_subs.append(sub)

    measure_since = sim.now + scale.warmup[1] + 2.0
    stop_at = measure_since + scale.duration
    fleets = []
    for i, name in enumerate(topology.names):
        fleet = FederationSitePublishers(
            sim,
            deployment,
            name,
            site_topic(i),
            publishers_per_broker,
            publish_interval,
            book,
            stop_at=stop_at,
            warmup=scale.warmup,
            gen_id_base=i * 1000,
        )
        fleet.start()
        fleets.append(fleet)

    if fault_plan is not None:
        from repro.faults import FaultScheduler

        plan = (
            fault_plan(measure_since, scale.duration)
            if callable(fault_plan)
            else fault_plan
        )
        FaultScheduler(sim, plan).attach(
            lan=deployment.cluster.lan,
            cluster=deployment.cluster,
            brokers=deployment.brokers,
        )

    snapshot: dict[tuple[str, str], int] = {}
    sim.call_at(measure_since, lambda: snapshot.update(deployment.link_snapshot()))
    sim.run(until=stop_at + scale.drain)

    stats = rtt_stats(book, since=measure_since)
    rtts = book.rtts(since=measure_since)
    p50, p99 = _percentiles(rtts)
    totals = deployment.link_totals(since_snapshot=snapshot)
    per_link_mean, per_link_max = _link_summary(totals)
    if tel is not None:
        tel.observe_run(
            book,
            middleware="federation",
            measure_since=measure_since,
            label=f"federation[{n_brokers}]",
        )
    return FederationRunResult(
        n_brokers=n_brokers,
        routing="routed",
        book=book,
        measure_since=measure_since,
        sent=stats.sent,
        received=stats.count,
        mean_rtt_ms=stats.mean_ms,
        stddev_rtt_ms=stats.stddev_ms,
        loss_rate=stats.loss_rate,
        rtt_p50_ms=p50,
        rtt_p99_ms=p99,
        rtts=rtts,
        link_messages=totals,
        per_link_mean=per_link_mean,
        per_link_max=per_link_max,
        control_messages=sum(
            b.stats.control_messages for b in deployment.brokers
        ),
        orphaned_up=sum(b.stats.orphaned_up for b in deployment.brokers),
        reparents=controller.reparents,
        converged=deployment.converged(),
        broker_stats={
            b.name: {
                "published": b.stats.messages_published,
                "delivered": b.stats.messages_delivered,
                "forwards_up": b.stats.forwards_up,
                "forwards_down": b.stats.forwards_down,
                "routing_entries": b.table.entry_count(),
            }
            for b in deployment.brokers
        },
    )


# --------------------------------------------------------- broadcast A/B leg

def _broadcast_subscriber(
    sim: Simulator,
    transport: Any,
    node: Any,
    broker: Broker,
    sub_id: str,
    topics: tuple[str, ...],
    stamp_records: bool,
) -> Generator[Any, Any, None]:
    """Raw-protocol narada subscriber on ``node`` (same-node measurement)."""
    channel = yield from transport.connect(node, broker.node.name, broker.port)

    def read_loop() -> Generator[Any, Any, None]:
        while True:
            delivery = yield channel.receive()
            if delivery.payload is EOF:
                return
            yield from node.execute(
                channel.cost_model.recv_cost(delivery.nbytes)
            )
            frame = delivery.payload
            if frame[0] == "deliver":
                messages = [frame[2]]
            elif frame[0] == "deliver_batch":
                messages = frame[2]
            else:
                continue
            if not stamp_records:
                continue
            for message in messages:
                record = getattr(message, "_record", None)
                if record is not None and record.t_received is None:
                    record.t_arrived = delivery.delivered_at
                    record.t_received = sim.now
                    tel = _telemetry()
                    if tel is not None:
                        tel.mark(
                            record, "delivered", sim.now, "narada", node.name
                        )

    sim.process(read_loop(), name=f"bcastsub.{sub_id}")
    for i, topic in enumerate(topics):
        yield from channel.send(
            ("subscribe", f"{sub_id}.{i}", Topic(topic), None, False),
            broker.config.control_bytes,
        )


def _broadcast_publishers(
    sim: Simulator,
    transport: Any,
    broker: Broker,
    topic: str,
    n_generators: int,
    publish_interval: float,
    book: RecordBook,
    stop_at: float,
    warmup: tuple[float, float],
    gen_id_base: int,
) -> None:
    """Site publisher fleet speaking the narada wire protocol."""

    def generator(gen_id: int) -> Generator[Any, Any, None]:
        try:
            channel = yield from transport.connect(
                broker.node, broker.node.name, broker.port
            )
        except (ChannelClosed, MessageLost):
            return
        model = PowerGenerator(
            gen_id, sim.rng.stream(f"bcastgen.{gen_id}"),
            site=f"site-{gen_id % 97}",
        )
        lo, hi = warmup
        if hi > 0:
            yield sim.timeout(sim.rng.uniform(f"bcastwarm.{gen_id}", lo, hi))
        seq = 0
        destination = Topic(topic)
        cfg = broker.config
        while sim.now < stop_at:
            message = narada_map_message(model.sample(sim.now))
            message.destination = destination
            message.message_id = f"bcast.{gen_id}.{seq}"
            record = book.new_record(gen_id, seq, sim.now)
            message._record = record
            try:
                yield from channel.send(
                    ("publish", message),
                    message.wire_size() + cfg.frame_overhead_bytes,
                )
            except (ChannelClosed, MessageLost):
                return
            record.t_after_send = sim.now
            seq += 1
            yield sim.timeout(publish_interval)

    for k in range(n_generators):
        sim.process(
            generator(gen_id_base + k), name=f"bcastpub.{topic}.{k}"
        )


def _instrument_star_links(network: Any, brokers: list[Broker]) -> dict:
    """Count inter-broker event sends per directed star link.

    Wraps the network's ``_send_forward`` on the instance so every flood /
    routed forward is attributed to its ``(src, dst)`` link — the broadcast
    leg's equivalent of the federation deployment's traffic ledger.
    """
    link_of: dict[int, tuple[str, str]] = {}
    ledger: dict[tuple[str, str], int] = {}
    for broker in brokers:
        for peer_name, channel in broker.peer_channels.items():
            link_of[id(channel)] = (broker.name, peer_name)
            ledger[(broker.name, peer_name)] = 0
    original = network._send_forward

    def counting(broker, channel, message, targets):
        key = link_of.get(id(channel))
        if key is not None:
            ledger[key] += 1
        yield from original(broker, channel, message, targets)

    network._send_forward = counting
    return ledger


def federation_broadcast_run(
    n_brokers: int,
    *,
    publishers_per_broker: int = PUBLISHERS_PER_BROKER,
    publish_interval: float = PUBLISH_INTERVAL,
    scale: Optional[Scale] = None,
    seed: int = 1,
    config: Optional[NaradaConfig] = None,
) -> FederationRunResult:
    """The A/B leg: the same site workload against the modelled broadcast
    DBN — ``n_brokers`` narada brokers in a star (hub = unit controller =
    the control-room tier), every event flooded to every link."""
    from repro.federation.deployment import FederationCluster
    from repro.federation.topology import broker_name

    scale = scale or Scale.from_env()
    sim = Simulator(seed=seed)
    names = tuple(broker_name(i) for i in range(n_brokers))
    cluster = FederationCluster(sim, names)
    transport = TcpTransport(sim, cluster.lan)
    config = config or NaradaConfig()  # broadcast_flaw=True: v1.1.3
    brokers: list[Broker] = []
    for name in names:
        broker = Broker(sim, cluster.node(name), name, config)
        broker.serve(transport, 6200)
        broker.port = 6200  # type: ignore[attr-defined]
        brokers.append(broker)
    network = sim.run_process(star_network(sim, transport, brokers))
    ledger = _instrument_star_links(network, brokers)

    tel = _telemetry()
    if tel is not None:
        tel.sample_node(sim, cluster.node(names[0]), middleware="narada")

    book = RecordBook()
    all_topics = tuple(site_topic(i) for i in range(n_brokers))
    sim.run_process(
        _broadcast_subscriber(
            sim, transport, cluster.node(names[0]), brokers[0],
            "control", all_topics, stamp_records=True,
        )
    )
    for i, name in enumerate(names):
        sim.run_process(
            _broadcast_subscriber(
                sim, transport, cluster.node(name), brokers[i],
                f"site{i}", (site_topic(i),), stamp_records=False,
            )
        )

    measure_since = sim.now + scale.warmup[1] + 2.0
    stop_at = measure_since + scale.duration
    for i, name in enumerate(names):
        _broadcast_publishers(
            sim,
            transport,
            brokers[i],
            site_topic(i),
            publishers_per_broker,
            publish_interval,
            book,
            stop_at=stop_at,
            warmup=scale.warmup,
            gen_id_base=i * 1000,
        )

    snapshot: dict[tuple[str, str], int] = {}
    sim.call_at(measure_since, lambda: snapshot.update(ledger))
    sim.run(until=stop_at + scale.drain)

    stats = rtt_stats(book, since=measure_since)
    rtts = book.rtts(since=measure_since)
    p50, p99 = _percentiles(rtts)
    totals = {
        key: count - snapshot.get(key, 0) for key, count in ledger.items()
    }
    per_link_mean, per_link_max = _link_summary(totals)
    if tel is not None:
        tel.observe_run(
            book,
            middleware="narada",
            measure_since=measure_since,
            label=f"federation_broadcast[{n_brokers}]",
        )
    return FederationRunResult(
        n_brokers=n_brokers,
        routing="broadcast",
        book=book,
        measure_since=measure_since,
        sent=stats.sent,
        received=stats.count,
        mean_rtt_ms=stats.mean_ms,
        stddev_rtt_ms=stats.stddev_ms,
        loss_rate=stats.loss_rate,
        rtt_p50_ms=p50,
        rtt_p99_ms=p99,
        rtts=rtts,
        link_messages=totals,
        per_link_mean=per_link_mean,
        per_link_max=per_link_max,
        broker_stats={
            b.name: {
                "published": b.stats.messages_published,
                "delivered": b.stats.messages_delivered,
                "forwarded": b.stats.messages_forwarded,
            }
            for b in brokers
        },
    )


# ----------------------------------------------------------------- the sweep

def run_federation_sweep(
    broker_counts: tuple[int, ...],
    routing: str,
    scale: Optional[Scale] = None,
    seed: int = 1,
    jobs: int = 1,
) -> dict[int, FederationRunResult]:
    """One sweep leg: ``routing`` is ``"routed"`` or ``"broadcast"``."""
    from repro.harness.parallel import map_points

    fn = {
        "routed": "federation_run",
        "broadcast": "federation_broadcast_run",
    }[routing]
    results = map_points(
        __name__,
        fn,
        [dict(n_brokers=n, scale=scale, seed=seed) for n in broker_counts],
        jobs=jobs,
    )
    return dict(zip(broker_counts, results))


def federation_scaling(
    routed: dict[int, FederationRunResult],
    broadcast: dict[int, FederationRunResult],
) -> ExperimentResult:
    """Per-link traffic and delivery RTT vs broker count, routed tree vs
    broadcast DBN — the subsystem's headline figure."""
    result = ExperimentResult(
        "federation_scaling",
        "Federated tree (topic-aware routing) vs broadcast DBN",
        "brokers",
        "event messages per link",
    )
    headers = [
        "brokers",
        "routed msg/link",
        "bcast msg/link",
        "routed p50/p99 (ms)",
        "bcast p50/p99 (ms)",
        "routed loss",
        "bcast loss",
    ]
    rows = []
    for n in sorted(set(routed) & set(broadcast)):
        r, b = routed[n], broadcast[n]
        result.add_point("routed", n, r.per_link_mean)
        result.add_point("broadcast", n, b.per_link_mean)
        result.add_point("routed_p99_ms", n, r.rtt_p99_ms)
        result.add_point("broadcast_p99_ms", n, b.rtt_p99_ms)
        rows.append(
            [
                n,
                round(r.per_link_mean, 1),
                round(b.per_link_mean, 1),
                f"{r.rtt_p50_ms:.1f}/{r.rtt_p99_ms:.1f}",
                f"{b.rtt_p50_ms:.1f}/{b.rtt_p99_ms:.1f}",
                f"{r.loss_rate:.2%}",
                f"{b.loss_rate:.2%}",
            ]
        )
    result.table = (headers, rows)
    ns = sorted(set(routed) & set(broadcast))
    if len(ns) >= 2:
        lo, hi = ns[0], ns[-1]
        broker_growth = hi / lo
        routed_growth = routed[hi].per_link_mean / max(
            1e-9, routed[lo].per_link_mean
        )
        bcast_growth = broadcast[hi].per_link_mean / max(
            1e-9, broadcast[lo].per_link_mean
        )
        result.note(
            f"brokers x{broker_growth:.1f}: per-link traffic x"
            f"{routed_growth:.2f} routed (sub-linear, ~O(log n)) vs x"
            f"{bcast_growth:.2f} broadcast (linear) — topic-aware routing "
            "removes the §III.E.2 'unnecessary data flow between nodes'"
        )
    worst_routed_loss = max(r.loss_rate for r in routed.values())
    result.note(
        f"routed delivery loss {worst_routed_loss:.2%} at every swept scale "
        "(equal delivery guarantees; the traffic saving is not paid in loss)"
    )
    orphans = sum(r.orphaned_up for r in routed.values())
    if orphans:
        result.note(f"{orphans} events orphaned during fault windows")
    result.meta["routed"] = {
        n: r.per_link_mean for n, r in sorted(routed.items())
    }
    result.meta["broadcast"] = {
        n: b.per_link_mean for n, b in sorted(broadcast.items())
    }
    return result
