"""NaradaBrokering experiments: Table II / Figs 3, 4, 6, 7, 8, 9.

One building block — :func:`narada_run` — sets up the testbed exactly as
§III.E describes (brokers, per-node subscribers with id-range selectors,
staggered generator fleet), runs it, and returns the record book plus node
statistics.  The figure builders assemble paper series from such runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster import HydraCluster, VmStat
from repro.cluster.vmstat import VmStatSummary
from repro.core import ExperimentResult, RecordBook, percentile_curve, rtt_stats
from repro.core.metrics import within_threshold
from repro.harness.scale import Scale
from repro.jms import AckMode
from repro.narada import Broker, NaradaConfig, star_network
from repro.powergrid import FleetConfig, NaradaFleet, NaradaReceiver
from repro.powergrid.workload import MONITORING_TOPIC
from repro.sim import Simulator
from repro.telemetry.context import current as _telemetry
from repro.transport import NioTransport, TcpTransport, UdpTransport

BROKER_PORT = 5045
CLIENT_NODES = ("hydra5", "hydra6", "hydra7", "hydra8")
BROKER_NODES_SINGLE = ("hydra1",)
BROKER_NODES_DBN = ("hydra1", "hydra2", "hydra3", "hydra4")


def steady_state_summary(vm: VmStat, since: float) -> VmStatSummary:
    """CPU idle over the steady-state window; memory consumption (peak −
    bottom, the paper's definition) over the whole run — connection setup is
    where most memory is committed."""
    cpu = vm.summary(warmup=since)
    mem = vm.summary(warmup=0.0)
    return VmStatSummary(
        mean_cpu_idle_percent=cpu.mean_cpu_idle_percent,
        memory_consumption_bytes=mem.memory_consumption_bytes,
        samples=cpu.samples,
    )


@dataclass
class NaradaRunResult:
    """Everything one test run produces."""

    connections: int
    book: RecordBook
    measure_since: float
    vmstat: dict[str, VmStatSummary]
    oom: bool
    refused: int
    sent: int
    received: int
    mean_rtt_ms: float
    stddev_rtt_ms: float
    loss_rate: float
    rtts: Any  # np.ndarray of measured-window RTT seconds
    broker_stats: dict[str, Any] = field(default_factory=dict)
    #: Deliveries that escaped suppression and were counted twice.
    duplicates: int = 0
    #: Redeliveries the durable receivers' (gen_id, seq) index absorbed.
    redeliveries: int = 0
    #: Supervised-receiver reconnects (durable mode under faults).
    receiver_reconnects: int = 0
    #: Retained copies the broker replayed on durable re-subscribes.
    messages_replayed: int = 0
    #: Human-readable fault injection log ("t=... kind target note").
    fault_log: list[str] = field(default_factory=list)


def _make_transport(kind: str, sim: Simulator, lan: Any) -> Any:
    if kind == "tcp":
        return TcpTransport(sim, lan)
    if kind == "nio":
        return NioTransport(sim, lan)
    if kind == "udp":
        # JMS over UDP: transport-level ack with retransmission (§III.E.1).
        return UdpTransport(
            sim, lan, loss_probability=0.017, acked=True, rto=0.15, max_retries=1
        )
    raise ValueError(f"unknown transport {kind!r}")


def narada_run(
    connections: int,
    *,
    dbn: bool = False,
    transport_kind: str = "tcp",
    ack_mode: int = AckMode.AUTO_ACKNOWLEDGE,
    payload_multiplier: int = 1,
    publish_interval: float = 10.0,
    scale: Optional[Scale] = None,
    seed: int = 1,
    config: Optional[NaradaConfig] = None,
    fault_plan: Any = None,
    scenario: Any = None,
    fleet_retry: Any = None,
    fleet_failover: bool = False,
    durable_receivers: bool = False,
) -> NaradaRunResult:
    """One §III.E test: ``connections`` generators against one broker or the
    4-broker DBN, measured in steady state.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan` or a template callable
    ``(measure_since, duration) -> FaultPlan``) arms fault injection against
    this run; ``scenario`` (a :class:`repro.scenario.Scenario` or template)
    additionally perturbs the workload and merges its fault fragment in;
    ``fleet_retry``/``fleet_failover`` give the publishers retry-with-backoff
    and broker-failover recovery; ``durable_receivers`` makes every
    subscriber a *supervised durable* subscription — the broker retains
    delivered-but-unacked and offline messages for replay, the receiver
    reconnects and re-subscribes after connection loss (broker crash or its
    own), and a ``(gen_id, seq)`` index turns the replayed at-least-once
    stream into exactly-once processing.
    """
    scale = scale or Scale.from_env()
    sim = Simulator(seed=seed)
    cluster = HydraCluster(sim)
    transport = _make_transport(transport_kind, sim, cluster.lan)
    config = config or NaradaConfig()

    broker_nodes = BROKER_NODES_DBN if dbn else BROKER_NODES_SINGLE
    brokers: list[Broker] = []
    for i, node_name in enumerate(broker_nodes):
        broker = Broker(sim, cluster.node(node_name), f"broker{i + 1}", config)
        broker.serve(transport, BROKER_PORT)
        brokers.append(broker)
    if dbn:
        # The paper's unit controller (hub) + three leaves, via the shared
        # single-network builder (also the federation sweep's A/B leg).
        sim.run_process(star_network(sim, transport, brokers, hub_index=0))

    vmstats = {
        node_name: VmStat(sim, cluster.node(node_name)) for node_name in broker_nodes
    }
    tel = _telemetry()
    if tel is not None:
        for node_name in broker_nodes:
            tel.sample_node(sim, cluster.node(node_name), middleware="narada")

    creation_span = connections * scale.creation_interval_narada
    measure_since = sim.now + creation_span + scale.warmup[1] + 2.0
    stop_at = measure_since + scale.duration
    fleet_config = FleetConfig(
        n_generators=connections,
        publish_interval=publish_interval,
        creation_interval=scale.creation_interval_narada,
        warmup_min=scale.warmup[0],
        warmup_max=scale.warmup[1],
        duration=scale.duration,
        stop_at=stop_at,
        payload_multiplier=payload_multiplier,
        client_nodes=CLIENT_NODES,
        retry=fleet_retry,
        failover=fleet_failover,
    )
    from repro.scenario.compiler import arm_scenario, merge_fault_plan

    fleet_config, compiled = arm_scenario(
        scenario, measure_since, scale.duration, fleet_config
    )
    book = RecordBook()

    # Per-client-node subscribers, each with an id-range selector covering
    # its own node's generators ("data were received by the node where they
    # were sent", §III.E.2).  In the DBN, publishers connect to *publishing*
    # brokers (the leaves) and subscribers to the *subscribing* broker (the
    # hub/unit controller) per Fig 5, so every event crosses the broker
    # network.
    if dbn:
        leaf_addresses = [(node, BROKER_PORT) for node in broker_nodes[1:]]
        publisher_addresses = [
            leaf_addresses[k % len(leaf_addresses)] for k in range(len(CLIENT_NODES))
        ]
        subscriber_address = (broker_nodes[0], BROKER_PORT)
    else:
        publisher_addresses = [(broker_nodes[0], BROKER_PORT)] * len(CLIENT_NODES)
        subscriber_address = (broker_nodes[0], BROKER_PORT)
    receivers: list[NaradaReceiver] = []
    receivers_failed = 0
    for k, client_node in enumerate(CLIENT_NODES):
        lo, hi = fleet_config.id_range(k)
        if lo >= hi:
            continue
        address = subscriber_address
        receiver = NaradaReceiver(
            sim,
            cluster,
            transport,
            address,
            client_node,
            MONITORING_TOPIC,
            selector=f"id >= {lo} AND id < {hi}",
            ack_mode=ack_mode,
            config=config,
            durable_name=f"durable.{client_node}" if durable_receivers else None,
            recover=durable_receivers,
            name=f"narada-recv.{client_node}",
        )
        if durable_receivers:
            # Supervised: start() is a long-running reconnect loop, not a
            # one-shot connect — run it as a background process.
            sim.process(receiver.start(), name=f"{receiver.name}.supervisor")
        else:
            try:
                sim.run_process(receiver.start())
            except Exception:
                receivers_failed += 1
                continue
        receivers.append(receiver)

    fleet = NaradaFleet(
        sim,
        cluster,
        transport,
        publisher_addresses,
        fleet_config,
        book,
        config=config,
        topic=MONITORING_TOPIC,
    )
    fleet.start()

    plan = (
        fault_plan(measure_since, scale.duration)
        if callable(fault_plan)
        else fault_plan
    )
    plan = merge_fault_plan(compiled, plan)
    scheduler = None
    if plan is not None and len(plan):
        from repro.faults import FaultScheduler

        scheduler = FaultScheduler(sim, plan)
        scheduler.attach(
            lan=cluster.lan, cluster=cluster, brokers=brokers,
            consumers=receivers,
        )

    end = stop_at + scale.drain
    sim.run(until=end)
    for vm in vmstats.values():
        vm.stop()

    stats = rtt_stats(book, since=measure_since)
    rtts = book.rtts(since=measure_since)
    if tel is not None:
        tel.observe_run(
            book,
            middleware="narada",
            measure_since=measure_since,
            label=f"narada{'_dbn' if dbn else ''}[{connections}]",
        )
    oom = fleet.stats.connections_refused > 0 or receivers_failed > 0
    return NaradaRunResult(
        connections=connections,
        book=book,
        measure_since=measure_since,
        vmstat={
            name: steady_state_summary(vm, measure_since)
            for name, vm in vmstats.items()
        },
        oom=oom,
        refused=fleet.stats.connections_refused,
        sent=stats.sent,
        received=stats.count,
        mean_rtt_ms=stats.mean_ms,
        stddev_rtt_ms=stats.stddev_ms,
        loss_rate=stats.loss_rate,
        rtts=rtts,
        duplicates=sum(r.duplicates for r in receivers),
        redeliveries=sum(r.redeliveries for r in receivers),
        receiver_reconnects=sum(r.reconnects for r in receivers),
        messages_replayed=sum(b.stats.messages_replayed for b in brokers),
        fault_log=scheduler.render_log() if scheduler is not None else [],
        broker_stats={
            b.name: {
                "published": b.stats.messages_published,
                "delivered": b.stats.messages_delivered,
                "forwards_received": b.stats.forwards_received,
                "forwarded": b.stats.messages_forwarded,
                "replayed": b.stats.messages_replayed,
                "threads_peak": b.jvm.threads_peak,
            }
            for b in brokers
        },
    )


# --------------------------------------------------------- comparison tests

#: Table II: the six §III.E.1 comparison tests at 800 connections.
COMPARISON_TESTS: dict[str, dict[str, Any]] = {
    "UDP": dict(transport_kind="udp"),
    "UDP CLI": dict(transport_kind="udp", ack_mode=AckMode.CLIENT_ACKNOWLEDGE),
    "NIO": dict(transport_kind="nio"),
    "TCP": dict(transport_kind="tcp"),
    "Triple": dict(transport_kind="tcp", payload_multiplier=3),
    "80": dict(transport_kind="tcp", connections=80, publish_interval=1.0),
}

COMPARISON_CONNECTIONS = 800


def run_comparison_tests(
    scale: Optional[Scale] = None, seed: int = 1, jobs: int = 1
) -> dict[str, NaradaRunResult]:
    """All six Table II settings (shared by fig3, fig4 and the loss table)."""
    from repro.harness.parallel import map_points

    points = []
    for overrides in COMPARISON_TESTS.values():
        kwargs = dict(overrides)
        kwargs.setdefault("connections", COMPARISON_CONNECTIONS)
        kwargs.update(scale=scale, seed=seed)
        points.append(kwargs)
    results = map_points(__name__, "narada_run", points, jobs=jobs)
    return dict(zip(COMPARISON_TESTS, results))


def fig3(runs: dict[str, NaradaRunResult]) -> ExperimentResult:
    """Fig 3: RTT and STDDEV bars for the comparison tests."""
    result = ExperimentResult(
        "table2_fig3",
        "Narada comparison tests: Round-Trip Time and Standard Deviation",
        "test",
        "millisecond",
    )
    headers = ["test", "RTT (ms)", "STDDEV (ms)", "loss rate"]
    rows = []
    order_names = [
        n for n in ("UDP", "UDP CLI", "NIO", "Triple", "TCP", "80") if n in runs
    ]
    for order, name in enumerate(order_names):
        run = runs[name]
        rows.append(
            [name, run.mean_rtt_ms, run.stddev_rtt_ms, f"{run.loss_rate:.4%}"]
        )
        result.add_point("RTT", order, run.mean_rtt_ms)
        result.add_point("STDDEV", order, run.stddev_rtt_ms)
    result.table = (headers, rows)
    if "TCP" in runs and "UDP" in runs:
        tcp, udp = runs["TCP"], runs["UDP"]
        result.note(
            f"UDP mean RTT is {udp.mean_rtt_ms / tcp.mean_rtt_ms:.1f}x TCP's "
            "(JMS-over-UDP acknowledgement pathology, §III.E.1)"
        )
    return result


def fig4(runs: dict[str, NaradaRunResult]) -> ExperimentResult:
    """Fig 4: percentile of RTT (95-100%) per comparison test."""
    result = ExperimentResult(
        "fig4",
        "Narada comparison tests, percentile of RTT",
        "percentile",
        "millisecond",
    )
    for name in ("NIO", "TCP", "UDP", "Triple", "80"):
        if name not in runs:
            continue
        for pct, ms in percentile_curve(runs[name].rtts):
            result.add_point(name, pct, ms)
    return result


# ----------------------------------------------------------- scaling sweeps

SINGLE_SWEEP = (500, 1000, 2000, 3000, 4000)
DBN_SWEEP = (2000, 3000, 4000, 5000)


def run_scaling_sweep(
    connections: tuple[int, ...],
    dbn: bool,
    scale: Optional[Scale] = None,
    seed: int = 1,
    jobs: int = 1,
) -> dict[int, NaradaRunResult]:
    from repro.harness.parallel import map_points

    results = map_points(
        __name__,
        "narada_run",
        [dict(connections=n, dbn=dbn, scale=scale, seed=seed) for n in connections],
        jobs=jobs,
    )
    return dict(zip(connections, results))


def fig7(
    single: dict[int, NaradaRunResult], dbn: dict[int, NaradaRunResult]
) -> ExperimentResult:
    """Fig 7: RTT & STDDEV vs connections, single broker vs DBN."""
    result = ExperimentResult(
        "fig7",
        "Narada tests, round-trip time and standard deviation",
        "concurrent connections",
        "millisecond",
    )
    for n, run in sorted(single.items()):
        if run.oom:
            result.note(
                f"single broker OOM at {n} connections "
                f"({run.refused} refused; threads peak "
                f"{run.broker_stats['broker1']['threads_peak']})"
            )
            continue
        result.add_point("RTT", n, run.mean_rtt_ms)
        result.add_point("STDDEV", n, run.stddev_rtt_ms)
    for n, run in sorted(dbn.items()):
        if run.oom:
            result.note(f"DBN OOM at {n} connections ({run.refused} refused)")
            continue
        if run.mean_rtt_ms > 1000 or run.loss_rate > 0.01:
            result.note(
                f"DBN data congestion at {n} connections (hub saturated): "
                "the v1.1.3 broadcast deficiency 'causes data congestion and "
                "limits its scalability' (paper §V)"
            )
            continue
        result.add_point("RTT2", n, run.mean_rtt_ms)
        result.add_point("STDDEV2", n, run.stddev_rtt_ms)
    # §III.E.2 headline: 99.8 % of messages within 100 ms.
    biggest_ok = max((n for n, r in single.items() if not r.oom), default=None)
    if biggest_ok is not None:
        frac = within_threshold(single[biggest_ok].rtts, 0.100)
        result.note(
            f"single broker at {biggest_ok} connections: "
            f"{frac:.1%} of messages within 100 ms"
        )
    return result


def fig6(
    single: dict[int, NaradaRunResult], dbn: dict[int, NaradaRunResult]
) -> ExperimentResult:
    """Fig 6: CPU idle and memory consumption vs connections."""
    result = ExperimentResult(
        "fig6",
        "Narada tests, CPU idle and memory consumption",
        "concurrent connections",
        "CPU idle % / memory MB",
    )
    for n, run in sorted(single.items()):
        if run.oom:
            continue
        vm = run.vmstat["hydra1"]
        result.add_point("CPU", n, vm.mean_cpu_idle_percent)
        result.add_point("MEM", n, vm.memory_consumption_mb)
    for n, run in sorted(dbn.items()):
        if run.oom:
            continue
        idles = [v.mean_cpu_idle_percent for v in run.vmstat.values()]
        mems = [v.memory_consumption_mb for v in run.vmstat.values()]
        result.add_point("CPU2", n, sum(idles) / len(idles))
        result.add_point("MEM2", n, sum(mems) / len(mems))
    return result


def fig8(single: dict[int, NaradaRunResult]) -> ExperimentResult:
    """Fig 8: single-broker percentile of RTT for 500-3000 connections."""
    result = ExperimentResult(
        "fig8",
        "Narada single server tests, percentile of RTT",
        "percentile",
        "millisecond",
    )
    for n, run in sorted(single.items()):
        if run.oom or n > 3000:
            continue
        for pct, ms in percentile_curve(run.rtts):
            result.add_point(str(n), pct, ms)
    return result


def fig9(dbn: dict[int, NaradaRunResult]) -> ExperimentResult:
    """Fig 9: DBN percentile of RTT for 2000-4000 connections."""
    result = ExperimentResult(
        "fig9",
        "Narada DBN tests, percentile of RTT",
        "percentile",
        "millisecond",
    )
    for n, run in sorted(dbn.items()):
        if run.oom or n > 4000:
            continue
        for pct, ms in percentile_curve(run.rtts):
            result.add_point(str(n), pct, ms)
    return result
