"""Parallel sweep execution across a process pool.

Every sweep point (one ``narada_run`` / ``rgma_run`` / ``plog_run`` at one
connection count) is an independent simulation: it builds its own
:class:`~repro.sim.kernel.Simulator` from the same ``(scale, seed)`` and
shares no mutable state with its siblings.  That makes the fan-out
trivially deterministic — a point computes the same record book whether it
runs in-process or in a worker — so ``--jobs N`` and ``--jobs 1`` produce
byte-identical results (asserted by ``tests/harness/test_parallel.py``).

Workers are addressed by ``(module, function, kwargs)`` specs rather than
callables so the pool only ever pickles plain data.  When the parent has
an active telemetry session, each worker observes its point under a fresh
session and ships back an :func:`~repro.telemetry.merge.export_telemetry`
snapshot; the parent merges the snapshots **in point order**, keeping
``--trace`` / ``--metrics-out`` complete and reproducible under fan-out.
"""

from __future__ import annotations

import importlib
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Optional, Sequence

from repro.telemetry import context as tel_context

#: Environment variable consulted when a jobs count is not given explicitly.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None, default: Optional[int] = None) -> int:
    """The effective worker count.

    Explicit ``jobs`` wins; else ``$REPRO_JOBS``; else ``default`` (the CLI
    passes the machine's CPU count, library callers leave it at 1 so plain
    ``run()`` calls never fork unless asked to).
    """
    if jobs is not None:
        n = int(jobs)
    else:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            n = int(env)
        elif default is not None:
            n = int(default)
        else:
            n = 1
    if n < 1:
        raise ValueError(f"jobs must be >= 1, got {n}")
    return n


def _books_of(result: Any) -> list:
    """The record books a run result carries (for span re-binding)."""
    book = getattr(result, "book", None)
    return [book] if book is not None else []


def _run_point(spec: tuple) -> tuple[Any, Optional[dict]]:
    """Worker entry: run one ``fn(**kwargs)`` sweep point.

    With ``fork`` start the child inherits the parent's telemetry stack;
    that session's marks could never travel back through it, so the stack
    is cleared and — when the parent had a session — replaced by a fresh
    one whose snapshot ships home in the return value.
    """
    module_name, fn_name, kwargs, with_telemetry = spec
    fn = getattr(importlib.import_module(module_name), fn_name)
    tel_context._stack.clear()
    if not with_telemetry:
        return fn(**kwargs), None
    from repro.telemetry import Telemetry
    from repro.telemetry.merge import export_telemetry

    telemetry = Telemetry(label=f"worker:{fn_name}")
    with tel_context.session(telemetry):
        result = fn(**kwargs)
    return result, export_telemetry(telemetry, books=_books_of(result))


def map_points(
    module_name: str,
    fn_name: str,
    kwargs_list: Sequence[dict],
    jobs: Optional[int] = None,
) -> list[Any]:
    """Run ``fn(**kwargs)`` for every kwargs dict; results in input order.

    ``jobs <= 1`` (after :func:`resolve_jobs`) or a single point runs the
    exact serial path — direct in-process calls, no executor, the parent's
    telemetry session observing live.  Otherwise points fan out over a
    :class:`ProcessPoolExecutor` and telemetry exports merge back in point
    order.
    """
    jobs = resolve_jobs(jobs)
    fn = getattr(importlib.import_module(module_name), fn_name)
    if jobs <= 1 or len(kwargs_list) <= 1:
        return [fn(**kwargs) for kwargs in kwargs_list]

    telemetry = tel_context.current()
    specs = [
        (module_name, fn_name, kwargs, telemetry is not None)
        for kwargs in kwargs_list
    ]
    with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
        outcomes = list(pool.map(_run_point, specs))

    results: list[Any] = []
    if telemetry is not None:
        from repro.telemetry.merge import merge_telemetry

        for result, export in outcomes:
            if export is not None:
                merge_telemetry(telemetry, export, books=_books_of(result))
            results.append(result)
    else:
        results = [result for result, _ in outcomes]
    return results
