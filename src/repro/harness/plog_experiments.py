"""Partitioned-log experiments: the third middleware candidate.

The paper's §V diagnosis is that neither measured system scales past a few
thousand generators: Narada's thread-per-connection broker hits its memory
wall near 4000 connections and the v1.1.3 DBN floods every event to every
broker; R-GMA's mediated SQL pipeline has second-scale process time.  These
experiments put a Kafka-style partitioned commit log (:mod:`repro.plog`) on
the same Hydra testbed, same workload, same metrics — and sweep *past* the
4000-connection wall to ask whether the §I soft-real-time requirement
(delivery within ~5 s, delays/loss under 0.5 %) holds at 10,000+
generators.

One building block — :func:`plog_run` — mirrors
:func:`repro.harness.narada_experiments.narada_run` exactly: same client
nodes, same staggered fleet, same steady-state measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster import HydraCluster, VmStat
from repro.cluster.vmstat import VmStatSummary
from repro.core import ExperimentResult, RecordBook, percentile_curve, rtt_stats
from repro.core.metrics import soft_realtime_compliance
from repro.faults import FaultScheduler
from repro.harness.narada_experiments import steady_state_summary
from repro.harness.scale import Scale
from repro.plog import PlogConfig, PlogDeployment
from repro.powergrid import FleetConfig, PlogFleet, PlogReceiver
from repro.sim import Simulator
from repro.telemetry.context import current as _telemetry
from repro.transport import TcpTransport, UdpTransport

CLIENT_NODES = ("hydra5", "hydra6", "hydra7", "hydra8")
BROKER_NODES_SINGLE = ("hydra1",)
BROKER_NODES_SPREAD = ("hydra1", "hydra2", "hydra3", "hydra4")

#: Above this connection count the creation stagger is compressed so the
#: ramp-up phase stays bounded (the steady-state window is what we measure;
#: connection *count*, not arrival rate, is the independent variable).
CREATION_CAP_CONNECTIONS = 4000


@dataclass
class PlogRunResult:
    """Everything one partitioned-log test run produces."""

    connections: int
    n_brokers: int
    book: RecordBook
    measure_since: float
    vmstat: dict[str, VmStatSummary]
    oom: bool
    refused: int
    sent: int
    received: int
    mean_rtt_ms: float
    stddev_rtt_ms: float
    loss_rate: float
    #: §I requirement at this load: (compliant, frac_late_or_lost, loss).
    compliant: bool
    frac_late_or_lost: float
    rtts: Any  # np.ndarray of measured-window RTT seconds
    broker_stats: dict[str, Any] = field(default_factory=dict)
    duplicates: int = 0
    #: Redeliveries the shared (gen_id, seq) sink index absorbed
    #: (``dedup_receivers`` runs only).
    redeliveries: int = 0
    #: Producer batches the brokers' idempotence index discarded as
    #: duplicates of an already-appended (pid, seq) window.
    duplicate_batches: int = 0
    #: Offset commits the coordinator rejected for a stale generation.
    fenced_commits: int = 0
    #: Human-readable fault injection log ("t=... kind target note").
    fault_log: list[str] = field(default_factory=list)
    #: Recovery counters (all zero without faults / recovery config).
    producer_retries: int = 0
    producer_reconnects: int = 0
    consumer_recoveries: int = 0
    #: Durability accounting over the measurement window: records whose
    #: produce *was acknowledged* (``t_after_send`` stamped by the ack
    #: machinery), and how many of those never reached a consumer.  With
    #: ``acks=all`` and a surviving in-sync replica, ``acked_lost`` must be
    #: zero even across a leader crash — the headline replication claim.
    acked: int = 0
    acked_lost: int = 0
    #: Replication / control-plane counters (zero when unreplicated).
    elections: int = 0
    coordinator_elections: int = 0
    isr_shrinks: int = 0
    isr_expands: int = 0
    records_replicated: int = 0
    coordinator_rejoins: int = 0
    #: ``(time, topic, partition, new_leader)`` per leader election — used
    #: by the determinism tests (same seed => identical log).
    election_log: list = field(default_factory=list)


def _plog_transport(kind: str, sim: Simulator, lan: Any) -> Any:
    if kind == "tcp":
        return TcpTransport(sim, lan)
    if kind == "udp":
        # Acked datagrams with zero baseline loss: the chaos experiments
        # inject loss through the LAN fault windows instead, so the no-fault
        # phases of a run stay clean.
        return UdpTransport(
            sim, lan, loss_probability=0.0, acked=True, rto=0.15, max_retries=1
        )
    raise ValueError(f"unknown transport {kind!r}")


def plog_run(
    connections: int,
    *,
    n_brokers: int = 1,
    scale: Optional[Scale] = None,
    seed: int = 1,
    config: Optional[PlogConfig] = None,
    deadline_s: float = 5.0,
    transport_kind: str = "tcp",
    fault_plan: Any = None,
    scenario: Any = None,
    dedup_receivers: bool = False,
) -> PlogRunResult:
    """One grid-monitoring test: ``connections`` generators against a
    partitioned-log deployment of ``n_brokers`` brokers, measured in steady
    state.

    ``fault_plan`` is either a :class:`repro.faults.FaultPlan` or a template
    callable ``(measure_since, duration) -> FaultPlan``; its events are
    armed against this run's LAN, brokers and consumers.  ``scenario`` (a
    :class:`repro.scenario.Scenario` or template) additionally perturbs the
    producers' publication rates and merges its fault fragment in.
    ``dedup_receivers`` gives all group members one shared ``(gen_id, seq)``
    index — the idempotent-sink half of exactly-once: post-rebalance replay
    of records a dead member already processed is absorbed as a
    redelivery, not a duplicate.
    """
    scale = scale or Scale.from_env()
    sim = Simulator(seed=seed)
    cluster = HydraCluster(sim)
    transport = _plog_transport(transport_kind, sim, cluster.lan)
    config = config or PlogConfig()

    broker_nodes = (
        BROKER_NODES_SPREAD[:n_brokers] if n_brokers > 1 else BROKER_NODES_SINGLE
    )
    deployment = PlogDeployment(
        sim, cluster, transport, broker_hosts=broker_nodes, config=config
    )
    deployment.serve()
    vmstats = {
        node_name: VmStat(sim, cluster.node(node_name)) for node_name in broker_nodes
    }
    tel = _telemetry()
    if tel is not None:
        for node_name in broker_nodes:
            tel.sample_node(sim, cluster.node(node_name), middleware="plog")

    creation_interval = scale.creation_interval_narada * min(
        1.0, CREATION_CAP_CONNECTIONS / max(1, connections)
    )
    creation_span = connections * creation_interval
    measure_since = sim.now + creation_span + scale.warmup[1] + 2.0
    stop_at = measure_since + scale.duration
    fleet_config = FleetConfig(
        n_generators=connections,
        publish_interval=10.0,
        creation_interval=creation_interval,
        warmup_min=scale.warmup[0],
        warmup_max=scale.warmup[1],
        duration=scale.duration,
        stop_at=stop_at,
        client_nodes=CLIENT_NODES,
    )
    from repro.scenario.compiler import arm_scenario, merge_fault_plan

    fleet_config, compiled = arm_scenario(
        scenario, measure_since, scale.duration, fleet_config
    )
    book = RecordBook()

    # One consumer-group member per client node ("data were received by the
    # node where they were sent", §III.E.2) — the coordinator splits the
    # topic's partitions evenly among them.
    dedup = None
    if dedup_receivers:
        from repro.core.dedup import DedupIndex

        dedup = DedupIndex()
    receivers = [
        PlogReceiver(sim, cluster, deployment, client_node, dedup=dedup)
        for client_node in CLIENT_NODES
    ]
    for receiver in receivers:
        receiver.start()

    fleet = PlogFleet(sim, cluster, deployment, fleet_config, book)
    fleet.start()

    scheduler = None
    plan = (
        fault_plan(measure_since, scale.duration)
        if callable(fault_plan)
        else fault_plan
    )
    plan = merge_fault_plan(compiled, plan)
    if plan is not None and len(plan):
        scheduler = FaultScheduler(sim, plan)
        scheduler.attach(
            lan=cluster.lan,
            cluster=cluster,
            brokers=deployment.brokers,
            consumers=[r.consumer for r in receivers],
        )

    sim.run(until=stop_at + scale.drain)
    for vm in vmstats.values():
        vm.stop()

    stats = rtt_stats(book, since=measure_since)
    rtts = book.rtts(since=measure_since)
    compliant, frac_late, loss = soft_realtime_compliance(
        book, deadline_s=deadline_s, since=measure_since
    )
    if tel is not None:
        tel.observe_run(
            book,
            middleware="plog",
            measure_since=measure_since,
            label=f"plog[{connections}x{len(broker_nodes)}]",
        )
    refused = fleet.stats.connections_refused
    window = [r for r in book.records if r.t_before_send >= measure_since]
    acked = sum(1 for r in window if r.t_after_send is not None)
    acked_lost = sum(
        1
        for r in window
        if r.t_after_send is not None and r.t_received is None
    )
    controller = deployment.controller
    return PlogRunResult(
        connections=connections,
        n_brokers=len(broker_nodes),
        book=book,
        measure_since=measure_since,
        vmstat={
            name: steady_state_summary(vm, measure_since)
            for name, vm in vmstats.items()
        },
        oom=refused > 0,
        refused=refused,
        sent=stats.sent,
        received=stats.count,
        mean_rtt_ms=stats.mean_ms,
        stddev_rtt_ms=stats.stddev_ms,
        loss_rate=stats.loss_rate,
        compliant=compliant,
        frac_late_or_lost=frac_late,
        rtts=rtts,
        broker_stats={
            b.name: {
                "connections": b.stats.connections_accepted,
                "produce_batches": b.stats.produce_batches,
                "records_appended": b.stats.records_appended,
                "records_fetched": b.stats.records_fetched,
                "records_dropped": b.stats.records_dropped,
                "duplicate_batches": b.stats.duplicate_batches,
                "fetches": b.stats.fetches,
                "threads_peak": b.jvm.threads_peak,
                "heap_committed": b.jvm.committed_bytes,
            }
            for b in deployment.brokers
        },
        duplicates=sum(r.duplicates for r in receivers),
        redeliveries=sum(r.redeliveries for r in receivers),
        duplicate_batches=sum(
            b.stats.duplicate_batches for b in deployment.brokers
        ),
        fenced_commits=sum(
            b.coordinator.fenced_commits
            for b in deployment.brokers
            if b.coordinator is not None
        ),
        fault_log=scheduler.render_log() if scheduler is not None else [],
        producer_retries=sum(p.retries for p in fleet._producers),
        producer_reconnects=sum(p.reconnects for p in fleet._producers),
        consumer_recoveries=sum(
            r.consumer.fetch_retries
            + r.consumer.fetch_timeouts
            + r.consumer.reconnects
            for r in receivers
        ),
        acked=acked,
        acked_lost=acked_lost,
        elections=controller.elections if controller is not None else 0,
        coordinator_elections=(
            controller.coordinator_elections if controller is not None else 0
        ),
        isr_shrinks=deployment.total_isr_shrinks(),
        isr_expands=deployment.total_isr_expands(),
        records_replicated=deployment.total_records_replicated(),
        coordinator_rejoins=sum(
            r.consumer.coordinator_rejoins for r in receivers
        ),
        election_log=(
            list(controller.election_log) if controller is not None else []
        ),
    )


# ----------------------------------------------------------- scaling sweeps

#: Single broker, swept straight through (and past) the Narada OOM wall.
SINGLE_SWEEP = (1000, 2000, 4000, 8000, 12000)
#: Four brokers, partitions spread round-robin over them.
SPREAD_SWEEP = (4000, 8000, 12000, 16000)


def run_scaling_sweep(
    connections: tuple[int, ...],
    n_brokers: int = 1,
    scale: Optional[Scale] = None,
    seed: int = 1,
    jobs: int = 1,
) -> dict[int, PlogRunResult]:
    from repro.harness.parallel import map_points

    results = map_points(
        __name__,
        "plog_run",
        [
            dict(connections=n, n_brokers=n_brokers, scale=scale, seed=seed)
            for n in connections
        ],
        jobs=jobs,
    )
    return dict(zip(connections, results))


def plog_scaling(
    single: dict[int, PlogRunResult], spread: dict[int, PlogRunResult]
) -> ExperimentResult:
    """RTT / STDDEV vs connections with the §I compliance verdict per load."""
    result = ExperimentResult(
        "plog_scaling",
        "Partitioned log: RTT and soft-real-time compliance vs connections",
        "concurrent connections",
        "millisecond",
    )
    headers = [
        "brokers", "connections", "RTT (ms)", "STDDEV (ms)", "loss rate",
        "late/lost", "SLA (<=5s, <0.5%)",
    ]
    rows: list[list[Any]] = []
    for label, prefix, sweep in (
        ("single broker", "", single),
        ("4-broker spread", "2", spread),
    ):
        for n, run in sorted(sweep.items()):
            if run.oom:
                result.note(
                    f"{label} OOM at {n} connections ({run.refused} refused)"
                )
                continue
            result.add_point("RTT" + prefix, n, run.mean_rtt_ms)
            result.add_point("STDDEV" + prefix, n, run.stddev_rtt_ms)
            rows.append([
                label, n, run.mean_rtt_ms, run.stddev_rtt_ms,
                f"{run.loss_rate:.4%}", f"{run.frac_late_or_lost:.4%}",
                "PASS" if run.compliant else "FAIL",
            ])
    result.table = (headers, rows)
    biggest = max(
        (n for n, r in single.items() if not r.oom and r.compliant),
        default=None,
    )
    if biggest is not None:
        run = single[biggest]
        threads = run.broker_stats["plog-hydra1"]["threads_peak"]
        result.note(
            f"single broker meets the §I soft-real-time requirement at "
            f"{biggest} connections with {threads} JVM threads — no "
            "thread-per-connection wall (Narada refuses connections near "
            "4000, paper §III.E.2)"
        )
    return result


def plog_percentiles(single: dict[int, PlogRunResult]) -> ExperimentResult:
    """Percentile-of-RTT curves (the Fig 8 analogue for the commit log)."""
    result = ExperimentResult(
        "plog_percentiles",
        "Partitioned log single broker, percentile of RTT",
        "percentile",
        "millisecond",
    )
    for n, run in sorted(single.items()):
        if run.oom:
            continue
        for pct, ms in percentile_curve(run.rtts):
            result.add_point(str(n), pct, ms)
    result.note(
        "tails stay flat with connection count: fetch batching amortises "
        "per-message broker work that grows per-connection in Narada"
    )
    return result


def fig15_threeway(
    scale: Optional[Scale] = None,
    seed: int = 1,
    connections: int = 400,
) -> ExperimentResult:
    """Fig 15 extended: RTT = PRT + PT + SRT for all three middlewares.

    Delegates to :func:`repro.harness.decomposition.fig15_threeway`, which
    computes every decomposition from the telemetry span pipeline.  (Import
    is deferred: :mod:`repro.harness.decomposition` imports this module for
    :func:`plog_run`.)
    """
    from repro.harness import decomposition

    return decomposition.fig15_threeway(
        scale=scale, seed=seed, connections=connections
    )
