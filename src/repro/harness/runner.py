"""Experiment registry, sweep caching and the CLI entry point.

Several figures share the same underlying sweeps (Figs 6, 7, 8, 9 all read
the Narada scaling runs; Figs 11-14 the R-GMA ones; the plog figures the
partitioned-log ones), so sweeps are cached per (kind, scale, seed) — in
two tiers:

* an in-process LRU (``SWEEP_CACHE_MAX`` entries; sweeps hold whole record
  books, so an unbounded cache would grow without limit when many
  (scale, seed) combinations run in one process, e.g. a benchmark
  session);
* a content-addressed on-disk tier (:mod:`repro.harness.cache`) keyed by
  the same inputs plus the active fault plan and a code-version salt, so
  re-running a figure in a fresh process skips the sweep entirely.  The
  disk tier is bypassed while a telemetry session is active — a sweep
  loaded from disk carries no live spans, and ``--trace`` must see real
  ones.

``--no-cache`` disables both tiers; :func:`clear_cache` empties both.
Sweep points fan out over a process pool when ``--jobs``/``$REPRO_JOBS``
ask for it (:mod:`repro.harness.parallel`); results are identical to a
serial run by construction.
"""

from __future__ import annotations

import argparse
import contextlib
import itertools
import os
import sys
from collections import OrderedDict
from typing import Any, Callable, Optional

from repro.cluster.hydra import HYDRA_SPEC
from repro.core import ExperimentResult
from repro.core.comparison import MiddlewareMeasurements, table_iii
from repro.faults import PLANS
from repro.harness import (
    chaos_experiments,
    decomposition,
    edge_experiments,
    federation_experiments,
    fleet_experiments,
    narada_experiments,
    plog_experiments,
    rgma_experiments,
    scenario_experiments,
)
from repro.harness.cache import DiskCache
from repro.harness.parallel import resolve_jobs
from repro.harness.scale import Scale
from repro.scenario import SCENARIOS
from repro.telemetry import context as tel_context

#: Max cached sweeps.  There are ~7 sweep kinds, so one (scale, seed)
#: combination fits entirely; older entries evict LRU-first beyond that.
SWEEP_CACHE_MAX = 8

_sweep_cache: "OrderedDict[tuple, Any]" = OrderedDict()


#: Never-reused tokens for telemetry sessions seen by the cache.  ``id()``
#: is not safe here: a freed session's address can be handed to the next
#: one, which would then satisfy lookups against the dead session's sweeps
#: (whose spans it does not hold).
_session_tokens = itertools.count(1)


def _cache_context() -> tuple:
    """Context folded into every sweep-cache key.

    A sweep built under an active fault plan or scenario must never satisfy
    a later plain lookup (or vice versa), and a sweep built outside a
    telemetry session carries no spans — so the active fault plan, the
    active scenario and the identity of the active telemetry session are
    part of the key.  ``run()`` maintains the plan/scenario halves via
    :data:`_active_fault_plan` / :data:`_active_scenario`.
    """
    tel = tel_context.current()
    if tel is None:
        return (_active_fault_plan, _active_scenario, None)
    token = getattr(tel, "_sweep_cache_token", None)
    if token is None:
        token = next(_session_tokens)
        tel._sweep_cache_token = token
    return (_active_fault_plan, _active_scenario, token)


_active_fault_plan: Optional[str] = None

#: Scenario name the current ``run()`` call armed (scenario experiments).
_active_scenario: Optional[str] = None

#: Worker count sweep builders pass to ``run_scaling_sweep`` (set per call
#: by :func:`run`, the way ``_active_fault_plan`` is).
_jobs: int = 1

#: ``--no-cache`` switch: False bypasses both cache tiers entirely.
_cache_enabled: bool = True


def _disk_key(key: tuple) -> tuple:
    """The on-disk key: the sweep key plus the active fault plan/scenario.

    A sweep built under a fault plan or scenario must be namespaced away
    from the plain entry even across processes.  (The telemetry part of
    :func:`_cache_context` is deliberately absent: the disk tier is
    skipped outright while a session is active.)
    """
    return key + (_active_fault_plan, _active_scenario)


def _cached(key: tuple, builder: Callable[[], Any]) -> Any:
    if not _cache_enabled:
        return builder()
    mem_key = key + _cache_context()
    if mem_key in _sweep_cache:
        _sweep_cache.move_to_end(mem_key)
        return _sweep_cache[mem_key]
    # The disk tier only serves sessionless lookups: entries carry record
    # books but no spans, and an active --trace session must observe live
    # runs.  (Disk writes are skipped symmetrically so a traced run never
    # seeds the cache with data an untraced run would then trust — they
    # would be identical, but keeping the tiers' contexts aligned is what
    # the fault-plan regression test pins down.)
    disk: Optional[DiskCache] = None
    if tel_context.current() is None:
        disk = DiskCache()
        value = disk.get(_disk_key(key))
        if value is not None:
            _store_in_memory(mem_key, value)
            return value
    value = builder()
    if disk is not None:
        disk.put(_disk_key(key), value)
    _store_in_memory(mem_key, value)
    return value


def _store_in_memory(mem_key: tuple, value: Any) -> None:
    _sweep_cache[mem_key] = value
    while len(_sweep_cache) > SWEEP_CACHE_MAX:
        _sweep_cache.popitem(last=False)


def clear_cache() -> None:
    """Empty both cache tiers (the in-process LRU and the disk entries)."""
    _sweep_cache.clear()
    DiskCache().clear()


# ------------------------------------------------------------ shared sweeps

def _comparison_runs(scale: Scale, seed: int):
    return _cached(
        ("narada_comparison", scale.cache_key(), seed),
        lambda: narada_experiments.run_comparison_tests(
            scale=scale, seed=seed, jobs=_jobs
        ),
    )


def _narada_single(scale: Scale, seed: int):
    return _cached(
        ("narada_single", scale.cache_key(), seed),
        lambda: narada_experiments.run_scaling_sweep(
            narada_experiments.SINGLE_SWEEP,
            dbn=False,
            scale=scale,
            seed=seed,
            jobs=_jobs,
        ),
    )


def _narada_dbn(scale: Scale, seed: int):
    return _cached(
        ("narada_dbn", scale.cache_key(), seed),
        lambda: narada_experiments.run_scaling_sweep(
            narada_experiments.DBN_SWEEP,
            dbn=True,
            scale=scale,
            seed=seed,
            jobs=_jobs,
        ),
    )


def _rgma_single(scale: Scale, seed: int):
    return _cached(
        ("rgma_single", scale.cache_key(), seed),
        lambda: rgma_experiments.run_scaling_sweep(
            rgma_experiments.SINGLE_SWEEP,
            distributed=False,
            scale=scale,
            seed=seed,
            jobs=_jobs,
        ),
    )


def _rgma_distributed(scale: Scale, seed: int):
    return _cached(
        ("rgma_distributed", scale.cache_key(), seed),
        lambda: rgma_experiments.run_scaling_sweep(
            rgma_experiments.DISTRIBUTED_SWEEP,
            distributed=True,
            scale=scale,
            seed=seed,
            jobs=_jobs,
        ),
    )


def _plog_single(scale: Scale, seed: int):
    return _cached(
        ("plog_single", scale.cache_key(), seed),
        lambda: plog_experiments.run_scaling_sweep(
            plog_experiments.SINGLE_SWEEP,
            n_brokers=1,
            scale=scale,
            seed=seed,
            jobs=_jobs,
        ),
    )


def _plog_spread(scale: Scale, seed: int):
    return _cached(
        ("plog_spread", scale.cache_key(), seed),
        lambda: plog_experiments.run_scaling_sweep(
            plog_experiments.SPREAD_SWEEP,
            n_brokers=4,
            scale=scale,
            seed=seed,
            jobs=_jobs,
        ),
    )


def _federation_counts(scale: Scale) -> tuple[int, ...]:
    return (
        federation_experiments.FEDERATION_SWEEP_FULL
        if scale.name == "full"
        else federation_experiments.FEDERATION_SWEEP
    )


def _federation_leg(scale: Scale, seed: int, routing: str):
    """One cached federation sweep leg (``"routed"`` or ``"broadcast"``).

    The key folds in :func:`federation_experiments.sweep_cache_key` — one
    ``(broker_count, FederationParams.cache_key())`` pair per point — so
    topology (depth, fan-out) and routing mode namespace both cache tiers:
    a cached broadcast-mode sweep can never satisfy a routed-mode lookup.
    """
    counts = _federation_counts(scale)
    key = (
        "federation",
        federation_experiments.sweep_cache_key(
            counts, federation_experiments.FANOUT, routing
        ),
        scale.cache_key(),
        seed,
    )
    return _cached(
        key,
        lambda: federation_experiments.run_federation_sweep(
            counts, routing, scale=scale, seed=seed, jobs=_jobs
        ),
    )


def _federation_routed(scale: Scale, seed: int):
    return _federation_leg(scale, seed, "routed")


def _federation_broadcast(scale: Scale, seed: int):
    return _federation_leg(scale, seed, "broadcast")


def _edge_points(scale: Scale) -> tuple[tuple[int, int], ...]:
    return (
        edge_experiments.EDGE_SWEEP_FULL
        if scale.name == "full"
        else edge_experiments.EDGE_SWEEP
    )


def _edge_sweep(scale: Scale, seed: int, middleware: str = "narada"):
    """One cached edge sweep leg.

    The key folds :func:`edge_experiments.sweep_cache_key` — one
    ``(clients, gateways, middleware, EdgeConfig.cache_key())`` tuple per
    point — so gateway topology and edge tuning namespace both cache tiers.
    """
    points = _edge_points(scale)
    key = (
        "edge",
        edge_experiments.sweep_cache_key(points, middleware, None),
        scale.cache_key(),
        seed,
    )
    return _cached(
        key,
        lambda: edge_experiments.run_edge_sweep(
            points, middleware, scale=scale, seed=seed, jobs=_jobs
        ),
    )


def _edge_direct(scale: Scale, seed: int, middleware: str = "narada"):
    return _cached(
        ("edge_direct", middleware, scale.cache_key(), seed),
        lambda: edge_experiments.direct_point(
            middleware, scale=scale, seed=seed
        ),
    )


# ------------------------------------------------------- simple experiments

def _table1(scale: Scale, seed: int) -> ExperimentResult:
    result = ExperimentResult(
        "table1", "Hardware specifications and software versions", "", ""
    )
    result.table = (
        ["CPU and memory", "OS and JVM", "Middleware"],
        [
            [
                f"{HYDRA_SPEC.cpu}, {HYDRA_SPEC.memory_bytes // 1024**3}GB",
                f"{HYDRA_SPEC.os}, {HYDRA_SPEC.jvm}",
                HYDRA_SPEC.middleware,
            ]
        ],
    )
    result.note(
        f"{HYDRA_SPEC.node_count} nodes, "
        f"{HYDRA_SPEC.lan_bandwidth_bps / 1e6:.0f} Mbps isolated LAN, "
        "observed transfer rate 7-8 MB/s"
    )
    return result


def _losses(scale: Scale, seed: int) -> ExperimentResult:
    runs = _comparison_runs(scale, seed)
    result = ExperimentResult(
        "losses", "Message loss rates (§III.E.1 and §III.F)", "case", "loss rate"
    )
    rows = []
    for name in ("UDP", "UDP CLI", "NIO", "TCP", "Triple", "80"):
        run = runs[name]
        rows.append([name, run.sent, run.received, f"{run.loss_rate:.4%}"])
    warm = rgma_experiments.warmup_loss(scale=scale, seed=seed)
    assert warm.table is not None
    rows.extend([[f"R-GMA {r[0]}", r[1], r[2], r[3]] for r in warm.table[1]])
    result.table = (["case", "sent", "received", "loss rate"], rows)
    result.note(
        "paper: UDP 0.06%, UDP CLI 0.03%, all TCP-family zero; R-GMA 0.17% "
        "without warm-up, zero with"
    )
    return result


def _table3(scale: Scale, seed: int) -> ExperimentResult:
    comparison = _comparison_runs(scale, seed)
    narada_single = _narada_single(scale, seed)
    narada_dbn = _narada_dbn(scale, seed)
    rgma_single = _rgma_single(scale, seed)
    rgma_dist = _rgma_distributed(scale, seed)

    def max_ok(sweep, extra_ok=lambda run: True):
        ok = [n for n, r in sweep.items() if not r.oom and extra_ok(r)]
        return max(ok) if ok else 0

    not_congested = lambda run: run.mean_rtt_ms < 1000 and run.loss_rate < 0.01

    narada_max_single = max_ok(narada_single)
    narada_max_dist = max_ok(narada_dbn, not_congested)
    # Mean RTT ratio over all common connection counts (a single point is
    # noisy; the paper compares the curves).
    common_ns = sorted(
        set(n for n in narada_single if not narada_single[n].oom)
        & set(n for n in narada_dbn if not narada_dbn[n].oom)
    )
    narada_ratio = sum(
        narada_dbn[n].mean_rtt_ms / narada_single[n].mean_rtt_ms for n in common_ns
    ) / len(common_ns)
    common_narada = common_ns[-1]
    narada_idle_ratio = (
        min(v.mean_cpu_idle_percent for v in narada_dbn[common_narada].vmstat.values())
        / max(1e-9, narada_single[common_narada].vmstat["hydra1"].mean_cpu_idle_percent)
    )
    narada = MiddlewareMeasurements(
        name="Narada",
        rtt_ms_light=comparison["TCP"].mean_rtt_ms,
        max_connections_single=narada_max_single,
        max_connections_distributed=max(narada_max_dist, narada_max_single),
        distributed_rtt_ratio=narada_ratio,
        distributed_idle_ratio=narada_idle_ratio,
    )

    common_rgma = max(
        set(n for n in rgma_single if not rgma_single[n].oom)
        & set(n for n in rgma_dist if not rgma_dist[n].oom)
    )
    rgma_ratio = (
        rgma_dist[common_rgma].mean_rtt_ms / rgma_single[common_rgma].mean_rtt_ms
    )
    rgma_idle_ratio = (
        min(v.mean_cpu_idle_percent for v in rgma_dist[common_rgma].vmstat.values())
        / max(1e-9, rgma_single[common_rgma].vmstat["hydra1"].mean_cpu_idle_percent)
    )
    rgma = MiddlewareMeasurements(
        name="R-GMA",
        rtt_ms_light=rgma_single[min(rgma_single)].mean_rtt_ms,
        max_connections_single=max_ok(rgma_single),
        max_connections_distributed=max_ok(rgma_dist),
        distributed_rtt_ratio=rgma_ratio,
        distributed_idle_ratio=rgma_idle_ratio,
    )

    result = ExperimentResult(
        "table3", "R-GMA and NaradaBrokering comparison", "", "rating"
    )
    result.table = table_iii(rgma, narada)
    result.note(
        "ratings derived from measured RTT / connection walls / "
        "distributed-vs-single ratios (repro.core.comparison)"
    )
    result.meta["narada"] = narada
    result.meta["rgma"] = rgma
    return result


# ------------------------------------------------- partitioned-log candidate

def _plog_scaling(scale: Scale, seed: int) -> ExperimentResult:
    return plog_experiments.plog_scaling(
        _plog_single(scale, seed), _plog_spread(scale, seed)
    )


def _plog_percentiles(scale: Scale, seed: int) -> ExperimentResult:
    return plog_experiments.plog_percentiles(_plog_single(scale, seed))


def _fig15_threeway(scale: Scale, seed: int) -> ExperimentResult:
    return decomposition.fig15_threeway(scale=scale, seed=seed)


def _fig15_federation(scale: Scale, seed: int) -> ExperimentResult:
    return decomposition.fig15_federation(scale=scale, seed=seed)


# ------------------------------------------------------- federation overlay

def _federation_scaling(scale: Scale, seed: int) -> ExperimentResult:
    return federation_experiments.federation_scaling(
        _federation_routed(scale, seed), _federation_broadcast(scale, seed)
    )


# ----------------------------------------------------- vectorized fleets

def _fleet_sweep(scale: Scale, seed: int, middleware: str, mode: str):
    """One cached fleet sweep leg (``"aggregate"`` or ``"process"``).

    The key folds :func:`fleet_experiments.sweep_cache_key` — one
    ``(n, middleware, mode, cohort_size, service-model key)`` tuple per
    point — so an aggregate-mode entry can never satisfy a per-process
    lookup in either cache tier (the cohort/aggregation analogue of the
    federation topology folding).
    """
    points = fleet_experiments.sweep_points(scale, mode)
    key = (
        "fleet",
        fleet_experiments.sweep_cache_key(
            points, middleware, mode, fleet_experiments.COHORT_SIZE
        ),
        scale.cache_key(),
        seed,
    )
    return _cached(
        key,
        lambda: fleet_experiments.run_fleet_sweep(
            points, middleware, mode, scale=scale, seed=seed, jobs=_jobs
        ),
    )


def _fleet_scaling(scale: Scale, seed: int) -> ExperimentResult:
    from repro.powergrid.fleet_engine import FLEET_MIDDLEWARES

    return fleet_experiments.fleet_scaling(
        {mw: _fleet_sweep(scale, seed, mw, "aggregate") for mw in FLEET_MIDDLEWARES},
        {mw: _fleet_sweep(scale, seed, mw, "process") for mw in FLEET_MIDDLEWARES},
        scale=scale,
        seed=seed,
    )


# -------------------------------------------------------------- edge tier

def _edge_scaling(scale: Scale, seed: int) -> ExperimentResult:
    return edge_experiments.edge_scaling(
        _edge_sweep(scale, seed), _edge_direct(scale, seed), "narada"
    )


def _fig15_edge(scale: Scale, seed: int) -> ExperimentResult:
    return decomposition.fig15_edge(scale=scale, seed=seed)


def _table3_extended(scale: Scale, seed: int) -> ExperimentResult:
    """Table III with a third row derived from the plog sweeps."""
    base = _table3(scale, seed)
    narada = base.meta["narada"]
    rgma = base.meta["rgma"]
    single = _plog_single(scale, seed)
    spread = _plog_spread(scale, seed)

    def max_ok(sweep):
        ok = [n for n, r in sweep.items() if not r.oom and r.compliant]
        return max(ok) if ok else 0

    common_ns = sorted(
        set(n for n in single if not single[n].oom)
        & set(n for n in spread if not spread[n].oom)
    )
    ratio = sum(
        spread[n].mean_rtt_ms / single[n].mean_rtt_ms for n in common_ns
    ) / len(common_ns)
    common = common_ns[-1]
    idle_ratio = (
        min(v.mean_cpu_idle_percent for v in spread[common].vmstat.values())
        / max(1e-9, single[common].vmstat["hydra1"].mean_cpu_idle_percent)
    )
    plog = MiddlewareMeasurements(
        name="Partitioned log",
        rtt_ms_light=single[min(single)].mean_rtt_ms,
        max_connections_single=max_ok(single),
        max_connections_distributed=max(max_ok(spread), max_ok(single)),
        distributed_rtt_ratio=ratio,
        distributed_idle_ratio=idle_ratio,
    )
    result = ExperimentResult(
        "table3_extended",
        "Table III extended with the partitioned commit log",
        "",
        "rating",
    )
    result.table = table_iii(rgma, narada, plog)
    result.note(
        f"plog single-broker compliance wall: {plog.max_connections_single} "
        f"connections (Narada: {narada.max_connections_single}; "
        f"R-GMA: {rgma.max_connections_single})"
    )
    result.meta["narada"] = narada
    result.meta["rgma"] = rgma
    result.meta["plog"] = plog
    return result


# ------------------------------------------------------- chaos experiments

#: Experiments that accept a ``fault_plan`` keyword (the ``--fault-plan``
#: CLI flag is only forwarded to these).
CHAOS_EXPERIMENTS = (
    "chaos_threeway",
    "chaos_durability",
    "chaos_broker_failover",
    "chaos_replication",
    "chaos_adaptive_backoff",
    "edge_gateway_crash",
)

#: Default plan per chaos experiment when ``--fault-plan`` is not given.
_CHAOS_DEFAULT_PLAN = {
    "chaos_threeway": "loss_burst",
    "chaos_durability": "durability_gauntlet",
    "chaos_broker_failover": "broker_outage",
    "chaos_replication": "broker_outage",
    "chaos_adaptive_backoff": "latency_spike",
    "edge_gateway_crash": "gateway_outage",
}


def _chaos_threeway(
    scale: Scale, seed: int, fault_plan: str = "loss_burst"
) -> ExperimentResult:
    return chaos_experiments.chaos_threeway(
        scale=scale, seed=seed, fault_plan=fault_plan
    )


def _chaos_durability(
    scale: Scale, seed: int, fault_plan: str = "durability_gauntlet"
) -> ExperimentResult:
    return chaos_experiments.chaos_durability(
        scale=scale, seed=seed, fault_plan=fault_plan
    )


def _chaos_broker_failover(
    scale: Scale, seed: int, fault_plan: str = "broker_outage"
) -> ExperimentResult:
    return chaos_experiments.chaos_broker_failover(
        scale=scale, seed=seed, fault_plan=fault_plan
    )


def _chaos_replication(
    scale: Scale, seed: int, fault_plan: str = "broker_outage"
) -> ExperimentResult:
    return chaos_experiments.chaos_replication(
        scale=scale, seed=seed, fault_plan=fault_plan
    )


def _chaos_adaptive_backoff(
    scale: Scale, seed: int, fault_plan: str = "latency_spike"
) -> ExperimentResult:
    return chaos_experiments.chaos_adaptive_backoff(
        scale=scale, seed=seed, fault_plan=fault_plan
    )


def _edge_gateway_crash(
    scale: Scale, seed: int, fault_plan: str = "gateway_outage"
) -> ExperimentResult:
    return edge_experiments.run_gateway_crash(
        scale=scale, seed=seed, fault_plan=fault_plan
    )


# ----------------------------------------------------- scenario experiments

#: Experiments that accept ``--scenario`` (and, like the chaos ones,
#: ``--fault-plan`` — a scenario's own faults merge with the named plan).
SCENARIO_EXPERIMENTS = ("scenario_threeway", "scenario_edge_storm")

#: Default scenario per experiment when ``--scenario`` is not given.
_SCENARIO_DEFAULT = {
    "scenario_threeway": "storm_front",
    "scenario_edge_storm": "alarm_storm",
}


def _scenario_threeway(
    scale: Scale,
    seed: int,
    scenario: str = "storm_front",
    fault_plan: Optional[str] = None,
) -> ExperimentResult:
    """Cached leg-set, then the scorecard.  The key folds the scenario's
    *structure* (:func:`scenario_experiments.scenario_cache_key`) so library
    edits invalidate cached legs; the active fault plan and scenario name
    namespace both tiers via :func:`_cache_context`/:func:`_disk_key`."""
    key = (
        "scenario_threeway",
        scenario_experiments.scenario_cache_key(scenario),
        scale.cache_key(),
        seed,
    )
    outcomes = _cached(
        key,
        lambda: scenario_experiments.threeway_outcomes(
            scale=scale,
            seed=seed,
            scenario=scenario,
            fault_plan=fault_plan,
            jobs=_jobs,
        ),
    )
    return scenario_experiments.scenario_threeway(
        scale=scale,
        seed=seed,
        scenario=scenario,
        fault_plan=fault_plan,
        outcomes=outcomes,
    )


def _scenario_edge_storm(
    scale: Scale,
    seed: int,
    scenario: str = "alarm_storm",
    fault_plan: Optional[str] = None,
) -> ExperimentResult:
    key = (
        "scenario_edge_storm",
        scenario_experiments.scenario_cache_key(scenario),
        scale.cache_key(),
        seed,
    )
    outcomes = _cached(
        key,
        lambda: scenario_experiments.edge_outcomes(
            scale=scale,
            seed=seed,
            scenario=scenario,
            fault_plan=fault_plan,
            jobs=_jobs,
        ),
    )
    return scenario_experiments.scenario_edge_storm(
        scale=scale,
        seed=seed,
        scenario=scenario,
        fault_plan=fault_plan,
        outcomes=outcomes,
    )


# -------------------------------------------------------------- experiments

def _fig3(scale: Scale, seed: int) -> ExperimentResult:
    return narada_experiments.fig3(_comparison_runs(scale, seed))


def _fig4(scale: Scale, seed: int) -> ExperimentResult:
    return narada_experiments.fig4(_comparison_runs(scale, seed))


def _fig6(scale: Scale, seed: int) -> ExperimentResult:
    return narada_experiments.fig6(_narada_single(scale, seed), _narada_dbn(scale, seed))


def _fig7(scale: Scale, seed: int) -> ExperimentResult:
    return narada_experiments.fig7(_narada_single(scale, seed), _narada_dbn(scale, seed))


def _fig8(scale: Scale, seed: int) -> ExperimentResult:
    return narada_experiments.fig8(_narada_single(scale, seed))


def _fig9(scale: Scale, seed: int) -> ExperimentResult:
    return narada_experiments.fig9(_narada_dbn(scale, seed))


def _fig10(scale: Scale, seed: int) -> ExperimentResult:
    return rgma_experiments.fig10(scale=scale, seed=seed)


def _fig11(scale: Scale, seed: int) -> ExperimentResult:
    return rgma_experiments.fig11(_rgma_single(scale, seed), _rgma_distributed(scale, seed))


def _fig12(scale: Scale, seed: int) -> ExperimentResult:
    return rgma_experiments.fig12(_rgma_single(scale, seed))


def _fig13(scale: Scale, seed: int) -> ExperimentResult:
    return rgma_experiments.fig13(_rgma_single(scale, seed), _rgma_distributed(scale, seed))


def _fig14(scale: Scale, seed: int) -> ExperimentResult:
    return rgma_experiments.fig14(_rgma_distributed(scale, seed))


def _fig15(scale: Scale, seed: int) -> ExperimentResult:
    return decomposition.fig15(scale=scale, seed=seed)


def _warmup_loss(scale: Scale, seed: int) -> ExperimentResult:
    return rgma_experiments.warmup_loss(scale=scale, seed=seed)


# ---------------------------------------------------------------- ablations

def _ablation_dbn_routing(scale: Scale, seed: int) -> ExperimentResult:
    """Broadcast flaw vs subscription-aware routing at a fixed load."""
    from repro.narada import NaradaConfig

    result = ExperimentResult(
        "ablation_dbn_routing",
        "DBN forwarding: v1.1.3 broadcast flaw vs subscription-aware routing",
        "mode",
        "millisecond",
    )
    rows = []
    for label, flaw in (("broadcast (v1.1.3)", True), ("routed (fixed)", False)):
        run = narada_experiments.narada_run(
            3000,
            dbn=True,
            scale=scale,
            seed=seed,
            config=NaradaConfig(broadcast_flaw=flaw),
        )
        forwards = sum(
            s["forwarded"] for s in run.broker_stats.values()
        )
        hub_idle = run.vmstat["hydra1"].mean_cpu_idle_percent
        rows.append([label, run.mean_rtt_ms, forwards, f"{hub_idle:.0f}%"])
        result.add_point(label, 0, run.mean_rtt_ms)
    result.table = (
        ["mode", "RTT (ms)", "inter-broker forwards", "hub CPU idle"], rows
    )
    result.note(
        "fixing the routing removes the unnecessary data flow the paper "
        "diagnosed and recovers DBN performance (paper §V future work)"
    )
    return result


def _ablation_udp_ack(scale: Scale, seed: int) -> ExperimentResult:
    """Per-message transport acking is what ruins JMS-over-UDP."""
    from repro.transport import UdpTransport

    result = ExperimentResult(
        "ablation_udp_ack",
        "UDP with and without the JMS acknowledgement protocol",
        "mode",
        "millisecond",
    )
    rows = []
    runs = _comparison_runs(scale, seed)
    acked = runs["UDP"]
    rows.append(["acked (JMS requires it)", acked.mean_rtt_ms, f"{acked.loss_rate:.3%}"])
    # Raw datagrams: same loss probability, no ack/retransmit.
    import repro.harness.narada_experiments as ne

    original = ne._make_transport

    def raw_udp(kind, sim, lan):
        if kind == "udp":
            return UdpTransport(
                sim, lan, loss_probability=0.03, acked=False, rto=0.15, max_retries=0
            )
        return original(kind, sim, lan)

    ne._make_transport = raw_udp
    try:
        raw = ne.narada_run(
            narada_experiments.COMPARISON_CONNECTIONS,
            transport_kind="udp",
            scale=scale,
            seed=seed,
        )
    finally:
        ne._make_transport = original
    rows.append(["raw (no ack)", raw.mean_rtt_ms, f"{raw.loss_rate:.3%}"])
    result.table = (["mode", "RTT (ms)", "loss rate"], rows)
    result.note(
        "without acking, UDP latency matches TCP but loss is unacceptable; "
        "with acking, loss is small but RTT inflates (paper §III.E.1)"
    )
    for row in rows:
        result.add_point(row[0], 0, row[1])
    return result


def _ablation_rgma_mediator(scale: Scale, seed: int) -> ExperimentResult:
    """Remove the consumer-side processing cost: PT collapses."""
    from repro.core import decompose
    from repro.rgma import RGMAConfig

    result = ExperimentResult(
        "ablation_rgma_mediator",
        "R-GMA process time vs consumer per-tuple cost",
        "consumer_tuple_cpu (ms)",
        "PT (ms)",
    )
    rows = []
    for label, cfg in (
        ("gLite 3.0 (modelled)", RGMAConfig()),
        ("zero-cost mediator", RGMAConfig(consumer_tuple_cpu=0.0, stream_period=0.1)),
    ):
        run = rgma_experiments.rgma_run(200, scale=scale, seed=seed, config=cfg)
        phases = decompose(run.book, since=run.measure_since)
        rows.append([label, phases.prt_ms, phases.pt_ms, phases.srt_ms])
        result.add_point(label, 0, phases.pt_ms)
    result.table = (["config", "PRT (ms)", "PT (ms)", "SRT (ms)"], rows)
    result.note(
        "PT dominates R-GMA RTT and is a middleware property, not a network "
        "one — the paper's Fig 15 conclusion"
    )
    return result


def _ablation_aggregation(scale: Scale, seed: int) -> ExperimentResult:
    """Message quantity vs message size (the §IV RMM observation)."""
    runs = _comparison_runs(scale, seed)
    tcp, triple = runs["TCP"], runs["Triple"]
    result = ExperimentResult(
        "ablation_aggregation",
        "Message count vs byte volume (same payload rate)",
        "case",
        "millisecond",
    )
    result.table = (
        ["case", "msgs (measured window)", "RTT (ms)"],
        [
            ["1x payload @ 10 s", tcp.sent, tcp.mean_rtt_ms],
            ["3x payload @ 30 s (same bytes/s)", triple.sent, triple.mean_rtt_ms],
        ],
    )
    per_msg_penalty = triple.mean_rtt_ms - tcp.mean_rtt_ms
    result.note(
        "tripling payload while cutting message rate to 1/3 changes RTT by "
        f"only {per_msg_penalty:+.1f} ms: per-message overhead dominates "
        "per-byte cost, so aggregation (fewer, bigger messages) raises "
        "throughput — the RMM result the paper cites in §IV"
    )
    return result


def _ablation_rgma_https(scale: Scale, seed: int) -> ExperimentResult:
    """The encryption overhead the paper avoided (§III.F: 'We did not use
    HTTPS because of the encryption overhead').

    At the paper's message sizes the dominant TLS cost is the *handshake*
    (asymmetric crypto on a PIII), paid once per producer connection —
    exactly the resource-location-deadline concern §V raises.  Steady-state
    RTT moves far less, so the assertion-bearing measurement is producer
    setup time, with a bulk-transfer crypto throughput probe as the second
    axis; RTT is reported as context.
    """
    from repro.cluster import HydraCluster
    from repro.rgma import RGMADeployment
    from repro.sim import Simulator
    from repro.transport.tls import TlsTransport

    rows = []
    result = ExperimentResult(
        "ablation_rgma_https",
        "R-GMA over HTTP vs HTTPS",
        "protocol",
        "millisecond",
    )
    for label, https in (("HTTP (paper's choice)", False), ("HTTPS", True)):
        # Producer setup probe: 50 timed create() calls on a fresh server.
        sim = Simulator(seed=seed)
        cluster = HydraCluster(sim)
        transport = TlsTransport(sim, cluster.lan) if https else None
        deployment = RGMADeployment.single_server(
            sim, cluster, transport=transport
        )
        setup_times = []

        def probe():
            for i in range(50):
                client = deployment.producer_client(cluster.node("hydra5"), 0)
                t0 = sim.now
                yield from client.create("gridmon")
                setup_times.append(sim.now - t0)

        sim.run_process(probe())
        setup_ms = sum(setup_times) / len(setup_times) * 1e3
        server_busy = cluster.node("hydra1").cpu_busy_time

        # Steady-state context: the fleet experiment.
        run = rgma_experiments.rgma_run(
            200, use_https=https, scale=scale, seed=seed
        )
        rows.append([label, setup_ms, server_busy, run.mean_rtt_ms])
        result.add_point(label, 0, setup_ms)
    result.table = (
        ["protocol", "producer setup (ms)", "server CPU for 50 setups (s)",
         "steady-state RTT (ms)"],
        rows,
    )
    result.note(
        "the TLS handshake multiplies producer setup time and burns server "
        "CPU per connection — the §III.F overhead, and a direct instance of "
        "§V's 'locate resources within a predefined time limit' concern"
    )
    return result


def _ablation_web_services(scale: Scale, seed: int) -> ExperimentResult:
    """§III.D made measurable: SOAP publishing vs native JMS."""
    import numpy as np

    from repro.cluster import HydraCluster
    from repro.jms.destination import Topic
    from repro.narada import Broker, narada_connection_factory
    from repro.powergrid.generator import PowerGenerator
    from repro.powergrid.payload import narada_map_message
    from repro.sim import Simulator
    from repro.transport import TcpTransport
    from repro.webservices import SoapCodec, WsPublishProxy, WsPublisherClient

    topic = Topic("power.monitoring")
    sim = Simulator(seed=seed)
    cluster = HydraCluster(sim)
    tcp = TcpTransport(sim, cluster.lan)
    broker = Broker(sim, cluster.node("hydra1"), "b")
    broker.serve(tcp, 5045)

    # End-to-end observer: when does each reading reach a subscriber?
    deliveries: dict[str, list[float]] = {"ws": [], "native": []}

    def subscribe():
        factory = narada_connection_factory(
            sim, tcp, cluster.node("hydra3"), "hydra1", 5045
        )
        conn = yield from factory.create_connection()
        conn.start()
        session = conn.create_session()
        yield from session.create_subscriber(
            topic,
            listener=lambda m: deliveries[m._path].append(sim.now - m._t0),
        )

    sim.run_process(subscribe())

    def build_proxy():
        factory = narada_connection_factory(
            sim, tcp, cluster.node("hydra2"), "hydra1", 5045
        )
        conn = yield from factory.create_connection()
        conn.start()
        return WsPublishProxy(sim, cluster.node("hydra2"), tcp, 8099, conn, topic)

    sim.run_process(build_proxy())
    gen = PowerGenerator(1, np.random.default_rng(seed))
    n = 50

    def stamped(path: str):
        message = narada_map_message(gen.sample(sim.now))
        message._path = path
        message._t0 = sim.now
        return message

    def ws_publish():
        client = WsPublisherClient(
            sim, tcp, cluster.node("hydra4"), "hydra2", 8099
        )
        times = []
        for _ in range(n):
            latency = yield from client.publish(stamped("ws"))
            times.append(latency)
            yield sim.timeout(0.05)
        return times

    ws_times = sim.run_process(ws_publish())

    def native_publish():
        factory = narada_connection_factory(
            sim, tcp, cluster.node("hydra4"), "hydra1", 5045
        )
        conn = yield from factory.create_connection()
        conn.start()
        pub = conn.create_session().create_publisher(topic)
        times = []
        for _ in range(n):
            message = stamped("native")
            t0 = sim.now
            yield from pub.publish(message)
            times.append(sim.now - t0)
            yield sim.timeout(0.05)
        return times

    native_times = sim.run_process(native_publish())
    sim.run(until=sim.now + 2.0)
    sample = narada_map_message(gen.sample(sim.now))
    sample.destination = topic
    expansion = SoapCodec().expansion_factor(sample)

    result = ExperimentResult(
        "ablation_web_services",
        "Why not Web Services (§III.D): SOAP proxy vs native JMS publish",
        "path",
        "millisecond",
    )
    ws_ms = sum(ws_times) / n * 1e3
    native_ms = sum(native_times) / n * 1e3
    ws_e2e = sum(deliveries["ws"]) / max(1, len(deliveries["ws"])) * 1e3
    native_e2e = (
        sum(deliveries["native"]) / max(1, len(deliveries["native"])) * 1e3
    )
    result.table = (
        ["path", "publish call (ms)", "end-to-end delivery (ms)"],
        [
            ["SOAP over HTTP via proxy", ws_ms, ws_e2e],
            ["native JMS", native_ms, native_e2e],
        ],
    )
    result.add_point("SOAP", 0, ws_e2e)
    result.add_point("native", 0, native_e2e)
    result.note(
        f"XML expands the monitoring payload {expansion:.1f}x; end-to-end "
        f"the SOAP path costs {ws_e2e / native_e2e:.1f}x native (publish "
        f"call: {ws_ms / native_ms:.0f}x, since SOAP waits a full HTTP "
        "round trip) — 'Web Services are known to be slow and not suitable "
        "for high performance scientific computing' (§III.D)"
    )
    return result


def _ablation_rgma_legacy_api(scale: Scale, seed: int) -> ExperimentResult:
    """The §III.F.3 discrepancy: the old Stream Producer / Archiver API
    measured in [11] versus the new Primary Producer / Consumer pipeline."""
    import numpy as np

    from repro.cluster import HydraCluster
    from repro.powergrid.payload import rgma_row
    from repro.powergrid.generator import PowerGenerator
    from repro.rgma import RGMADeployment
    from repro.rgma.stream_producer import LegacyDeployment, StreamProducerClient
    from repro.sim import Simulator

    n_producers = 100
    # -- legacy path --------------------------------------------------------
    sim = Simulator(seed=seed)
    cluster = HydraCluster(sim)
    deployment = RGMADeployment.single_server(sim, cluster)
    legacy = LegacyDeployment(deployment)
    from repro.transport.http import HttpClient

    http = HttpClient(
        sim, deployment.transport, cluster.node("hydra7"), "hydra1", 8080
    )

    def mk_archiver():
        response = yield from http.request(
            "/archiver/create", {"table": "gridmon", "where": None}, 140
        )
        return response.body["resource_id"]

    archiver_id = sim.run_process(mk_archiver())
    legacy_latencies: list[float] = []
    legacy.archiver_callback(
        archiver_id,
        lambda t: legacy_latencies.append(sim.now - t.meta["t_before_send"]),
    )

    def legacy_generator(i: int):
        client = StreamProducerClient(
            sim, deployment.transport, cluster.node("hydra5"), "hydra1", 8080
        )
        yield from client.create("gridmon")
        model = PowerGenerator(i, sim.rng.stream(f"lg.{i}"))
        yield sim.timeout(sim.rng.uniform("lg.warm", *scale.warmup))
        stop = sim.now + min(scale.duration, 60.0)
        while sim.now < stop:
            yield from client.insert(rgma_row(model.sample(sim.now)))
            yield sim.timeout(10.0)

    for i in range(n_producers):
        sim.process(legacy_generator(i))
    sim.run(until=scale.warmup[1] + min(scale.duration, 60.0) + 20.0)

    # -- new API at the same load -------------------------------------------
    new_run = rgma_experiments.rgma_run(n_producers, scale=scale, seed=seed)

    result = ExperimentResult(
        "ablation_rgma_legacy_api",
        "R-GMA old Stream Producer/Archiver API vs new PP/Consumer pipeline",
        "API generation",
        "millisecond",
    )
    legacy_ms = float(np.mean(legacy_latencies) * 1e3)
    result.table = (
        ["API", "mean RTT (ms)", "tuples"],
        [
            ["Stream Producer + Archiver (old, [11])", legacy_ms,
             len(legacy_latencies)],
            ["Primary Producer + Consumer (gLite 3.0)", new_run.mean_rtt_ms,
             new_run.received],
        ],
    )
    result.add_point("old API", 0, legacy_ms)
    result.add_point("new API", 0, new_run.mean_rtt_ms)
    result.note(
        "the old API streams tuples directly to archivers (no mediated "
        "consumer, no batch period, no poll loop) — reproducing why [11] "
        "'achieved high performance' where the paper's newer version did not"
    )
    return result


def _ablation_clock_skew(scale: Scale, seed: int) -> ExperimentResult:
    """Why the paper measured same-node round trips.

    "Data were received by the node where they were sent and there was no
    time synchronization problem" (§III.E.2); the distributed R-GMA test
    instead synchronised clocks with NTP (§III.F.1).  This ablation shows
    what cross-node timestamps would do to millisecond-scale RTTs under
    unsynchronised clocks vs NTP-disciplined ones.
    """
    import numpy as np

    run = narada_experiments.narada_run(400, scale=scale, seed=seed)
    true_rtts = run.rtts  # seconds; same-clock ground truth
    rng = np.random.default_rng(seed)

    result = ExperimentResult(
        "ablation_clock_skew",
        "Cross-node timestamping error vs clock discipline",
        "clock discipline",
        "millisecond",
    )
    rows: list[list] = [
        ["same node (paper's Narada method)", float(true_rtts.mean() * 1e3),
         0.0, "0%"],
    ]
    for label, skew_s in (
        ("NTP-synchronised (paper's R-GMA method)", 0.001),
        ("unsynchronised (drifted ~50 ms)", 0.050),
    ):
        # Per-(sender,receiver) pair offset, fixed for a run.
        offsets = rng.uniform(-skew_s, skew_s, size=8)
        pair = rng.integers(0, 8, size=true_rtts.size)
        apparent = true_rtts + offsets[pair]
        negative = float((apparent < 0).mean())
        rows.append(
            [label, float(apparent.mean() * 1e3),
             float(np.abs(apparent - true_rtts).mean() * 1e3),
             f"{negative:.0%}"]
        )
    result.table = (
        ["clocking", "apparent mean RTT (ms)", "mean |error| (ms)",
         "negative RTTs"],
        rows,
    )
    result.note(
        "a ~50 ms drift swamps Narada's millisecond RTTs entirely (many "
        "measurements go negative); NTP's ~1 ms residual is tolerable for "
        "R-GMA's second-scale RTTs but not for Narada's — hence the paper's "
        "same-node measurement design"
    )
    return result


EXPERIMENTS: dict[str, Callable[[Scale, int], ExperimentResult]] = {
    "table1": _table1,
    "table2_fig3": _fig3,
    "fig4": _fig4,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
    "losses": _losses,
    "rgma_warmup_loss": _warmup_loss,
    "table3": _table3,
    "table3_extended": _table3_extended,
    "plog_scaling": _plog_scaling,
    "plog_percentiles": _plog_percentiles,
    "fig15_threeway": _fig15_threeway,
    "fig15_federation": _fig15_federation,
    "fig15_edge": _fig15_edge,
    "federation_scaling": _federation_scaling,
    "fleet_scaling": _fleet_scaling,
    "edge_scaling": _edge_scaling,
    "edge_gateway_crash": _edge_gateway_crash,
    "chaos_threeway": _chaos_threeway,
    "chaos_durability": _chaos_durability,
    "chaos_broker_failover": _chaos_broker_failover,
    "chaos_replication": _chaos_replication,
    "chaos_adaptive_backoff": _chaos_adaptive_backoff,
    "scenario_threeway": _scenario_threeway,
    "scenario_edge_storm": _scenario_edge_storm,
    "ablation_dbn_routing": _ablation_dbn_routing,
    "ablation_udp_ack": _ablation_udp_ack,
    "ablation_rgma_mediator": _ablation_rgma_mediator,
    "ablation_aggregation": _ablation_aggregation,
    "ablation_rgma_https": _ablation_rgma_https,
    "ablation_web_services": _ablation_web_services,
    "ablation_rgma_legacy_api": _ablation_rgma_legacy_api,
    "ablation_clock_skew": _ablation_clock_skew,
}

EXPERIMENT_IDS = tuple(EXPERIMENTS)

#: One-line description per experiment id (``--list``).
DESCRIPTIONS: dict[str, str] = {
    "table1": "Table I: hardware specifications and software versions",
    "table2_fig3": "Table II / Fig 3: Narada comparison tests, RTT + STDDEV",
    "fig4": "Fig 4: Narada comparison tests, percentile of RTT",
    "fig6": "Fig 6: Narada CPU idle and memory vs connections",
    "fig7": "Fig 7: Narada RTT/STDDEV vs connections, single vs DBN",
    "fig8": "Fig 8: Narada single-broker percentile of RTT",
    "fig9": "Fig 9: Narada DBN percentile of RTT",
    "fig10": "Fig 10: R-GMA percentile of RTT, light load",
    "fig11": "Fig 11: R-GMA RTT/STDDEV vs connections",
    "fig12": "Fig 12: R-GMA single-server percentile of RTT",
    "fig13": "Fig 13: R-GMA CPU idle and memory vs connections",
    "fig14": "Fig 14: R-GMA distributed percentile of RTT",
    "fig15": "Fig 15: RTT decomposition (PRT/PT/SRT), R-GMA vs Narada",
    "losses": "Message loss rates (§III.E.1 and §III.F)",
    "rgma_warmup_loss": "R-GMA loss with and without the warm-up sleep",
    "table3": "Table III: derived qualitative comparison",
    "table3_extended": "Table III plus a partitioned-commit-log row",
    "plog_scaling": "Partitioned log: RTT + §I SLA compliance to 16k connections",
    "plog_percentiles": "Partitioned log: percentile of RTT per connection count",
    "fig15_threeway": "RTT decomposition for R-GMA, Narada and the plog",
    "fig15_federation": "RTT decomposition on the federated broker tree",
    "fig15_edge": "RTT decomposition through the long-poll gateway hop",
    "federation_scaling": "Per-link traffic + RTT: routed tree vs broadcast DBN",
    "fleet_scaling": "Vectorized cohort fleets: 10^3-10^6 publishers, 3 middlewares",
    "edge_scaling": "Edge tier: clients 10k+ pooled onto O(topics) connections",
    "edge_gateway_crash": "Gateway crash: failover, ring replay, exactly-once",
    "chaos_threeway": "All three middlewares under one deterministic fault plan",
    "chaos_durability": "Durable delivery parity: 0 loss AND 0 duplicates under faults",
    "chaos_broker_failover": "Plog broker crash: one-shot vs retry vs failover vs RF=2",
    "chaos_replication": "Plog durability ladder under a broker crash: RF x acks",
    "chaos_adaptive_backoff": "Plog retry: fixed vs RTT-adaptive backoff",
    "scenario_threeway": "One grid scenario on all three middlewares, SLA scorecard",
    "scenario_edge_storm": "One grid scenario through the edge tier, SLA scorecard",
    "ablation_dbn_routing": "DBN broadcast flaw vs subscription-aware routing",
    "ablation_udp_ack": "UDP with and without the JMS ack protocol",
    "ablation_rgma_mediator": "R-GMA process time vs consumer per-tuple cost",
    "ablation_aggregation": "Message count vs byte volume at equal payload rate",
    "ablation_rgma_https": "R-GMA over HTTP vs HTTPS",
    "ablation_web_services": "SOAP proxy publish vs native JMS (§III.D)",
    "ablation_rgma_legacy_api": "Old Stream Producer API vs new PP pipeline",
    "ablation_clock_skew": "Cross-node timestamp error vs clock discipline",
}


def list_experiments() -> str:
    """The ``--list`` text: one aligned line per registered experiment."""
    width = max(len(i) for i in EXPERIMENT_IDS)
    return "\n".join(
        f"{experiment_id:<{width}}  {DESCRIPTIONS.get(experiment_id, '')}"
        for experiment_id in EXPERIMENT_IDS
    )


def run(
    experiment_id: str,
    scale: Optional[Scale | str] = None,
    seed: int = 1,
    fault_plan: Optional[str] = None,
    scenario: Optional[str] = None,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> ExperimentResult:
    """Run one experiment by id; returns its :class:`ExperimentResult`.

    ``fault_plan`` selects a named fault schedule for the chaos and
    scenario experiments and is an error for any other experiment id;
    ``scenario`` selects a scenario script for the scenario experiments
    only.  ``jobs`` fans the sweep points out over that many worker
    processes (default: ``$REPRO_JOBS``, else serial — results are
    identical either way); ``cache=False`` bypasses both sweep-cache tiers
    for this call.
    """
    global _active_fault_plan, _active_scenario, _jobs, _cache_enabled
    if isinstance(scale, str):
        scale = Scale.named(scale)
    scale = scale or Scale.from_env()
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; choose from {EXPERIMENT_IDS}"
        ) from None
    if (
        experiment_id not in CHAOS_EXPERIMENTS
        and experiment_id not in SCENARIO_EXPERIMENTS
        and fault_plan is not None
    ):
        raise ValueError(
            f"--fault-plan only applies to chaos experiments "
            f"{CHAOS_EXPERIMENTS} and scenario experiments "
            f"{SCENARIO_EXPERIMENTS}, not {experiment_id!r}"
        )
    if scenario is not None and experiment_id not in SCENARIO_EXPERIMENTS:
        raise ValueError(
            f"--scenario only applies to scenario experiments "
            f"{SCENARIO_EXPERIMENTS}, not {experiment_id!r}"
        )
    previous_jobs, _jobs = _jobs, resolve_jobs(jobs)
    previous_cache, _cache_enabled = _cache_enabled, _cache_enabled and cache
    try:
        if experiment_id in SCENARIO_EXPERIMENTS:
            chosen = scenario or _SCENARIO_DEFAULT[experiment_id]
            if chosen not in SCENARIOS:
                raise ValueError(
                    f"unknown scenario {chosen!r}; choose from {sorted(SCENARIOS)}"
                )
            previous_plan, _active_fault_plan = _active_fault_plan, fault_plan
            previous_scenario, _active_scenario = _active_scenario, chosen
            try:
                return fn(scale, seed, scenario=chosen, fault_plan=fault_plan)
            finally:
                _active_fault_plan = previous_plan
                _active_scenario = previous_scenario
        if experiment_id in CHAOS_EXPERIMENTS:
            plan = fault_plan or _CHAOS_DEFAULT_PLAN[experiment_id]
            previous_plan = _active_fault_plan
            _active_fault_plan = plan
            try:
                return fn(scale, seed, fault_plan=plan)
            finally:
                _active_fault_plan = previous_plan
        return fn(scale, seed)
    finally:
        _jobs = previous_jobs
        _cache_enabled = previous_cache


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate a table/figure from the paper."
    )
    parser.add_argument(
        "experiment",
        nargs="*",
        help=f"experiment id(s): {', '.join(EXPERIMENT_IDS)} or 'all'",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered experiment ids with descriptions and exit",
    )
    parser.add_argument("--scale", default=None, choices=["bench", "smoke", "full"])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweep points (default: $REPRO_JOBS, else "
        "the CPU count; 1 = serial; results are identical at any value)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the sweep cache (both the in-process and disk tiers)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        choices=sorted(PLANS),
        help="fault schedule for the chaos/scenario experiments",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        choices=sorted(SCENARIOS),
        help="scenario script for the scenario experiments",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record telemetry spans for the run(s) and write a JSONL trace",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the telemetry metrics / resource-sampler JSON summary",
    )
    args = parser.parse_args(argv)
    if args.list:
        print(list_experiments())
        return 0
    if not args.experiment:
        parser.error("no experiment ids given (use --list to see them)")
    ids = list(args.experiment)
    if ids == ["all"]:
        ids = list(EXPERIMENT_IDS)

    telemetry = None
    ctx: Any = contextlib.nullcontext()
    if args.trace or args.metrics_out:
        from repro.telemetry import Telemetry

        telemetry = Telemetry(label=" ".join(ids))
        ctx = tel_context.session(telemetry)
    jobs = resolve_jobs(args.jobs, default=os.cpu_count() or 1)
    with ctx:
        for experiment_id in ids:
            plan = (
                args.fault_plan
                if experiment_id in CHAOS_EXPERIMENTS
                or experiment_id in SCENARIO_EXPERIMENTS
                else None
            )
            scenario = (
                args.scenario
                if experiment_id in SCENARIO_EXPERIMENTS
                else None
            )
            result = run(
                experiment_id,
                scale=args.scale,
                seed=args.seed,
                fault_plan=plan,
                scenario=scenario,
                jobs=jobs,
                cache=not args.no_cache,
            )
            print(result.render())
            print()
    if telemetry is not None:
        from repro.telemetry.exporters import (
            metrics_tables,
            write_metrics_json,
            write_trace_jsonl,
        )

        print(metrics_tables(telemetry))
        if args.trace:
            n_spans = write_trace_jsonl(telemetry, args.trace)
            print(f"trace: {n_spans} spans -> {args.trace}")
        if args.metrics_out:
            write_metrics_json(telemetry, args.metrics_out)
            print(f"metrics: -> {args.metrics_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
