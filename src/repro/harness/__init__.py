"""Experiment harness: regenerates every table and figure in the paper.

Each experiment id from DESIGN.md §4 maps to a function here; run them via

    from repro.harness import runner
    result = runner.run("fig7")
    print(result.render())

or from the command line::

    repro-experiment fig7 --scale bench

The ``bench`` scale compresses test duration and creation stagger so a full
figure regenerates in seconds-to-minutes of wall time; ``full`` uses the
paper's 30-minute runs and 0.5 s creation stagger (set ``REPRO_FULL=1`` or
``--scale full``).  Connection counts are never scaled: the x axes and the
out-of-memory walls are the phenomena under study.
"""

from repro.harness.scale import Scale
from repro.harness.runner import run, EXPERIMENT_IDS

__all__ = ["EXPERIMENT_IDS", "Scale", "run"]
