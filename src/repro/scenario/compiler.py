"""Lowering scenarios onto concrete runs.

:func:`compile_scenario` turns a pure :class:`~repro.scenario.events.Scenario`
into the two artefacts a run can arm:

* a :class:`~repro.powergrid.rates.RateSchedule` — every ``rate_burst``
  becomes piecewise-constant multiplier windows over the region's
  generator-id block (ramps discretized into :data:`RAMP_STEPS` equal
  steps), every ``substation_outage`` a multiplier-0 die-off window;
* a :class:`~repro.faults.FaultPlan` — every ``substation_outage`` becomes
  a LAN partition of the client node(s) physically hosting the region's
  generators, every ``link_degrade`` a packet-loss window on traffic
  leaving those nodes.

The same compiled scenario therefore drives *both* sides of a grid event
deterministically, against any middleware: the run functions
(``narada_run`` / ``rgma_run`` / ``plog_run`` / ``edge_point``) thread the
rate schedule into their fleet and merge the fault fragment with any user
``--fault-plan`` via :meth:`FaultPlan.merge`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.faults import FaultPlan
from repro.powergrid.rates import RateSchedule
from repro.scenario.events import Scenario, ScenarioEvent
from repro.telemetry.windows import TimeWindow

if TYPE_CHECKING:  # pragma: no cover
    from repro.powergrid.workload import FleetConfig

#: Constant steps a linear ramp is discretized into.  The schedule stays
#: piecewise-constant (every boundary known before the run starts), which
#: is what lets a sleeping generator wake exactly at each rate change.
RAMP_STEPS = 4


@dataclass
class CompiledScenario:
    """One scenario lowered onto one concrete fleet."""

    scenario: Scenario
    rates: RateSchedule
    faults: FaultPlan
    #: Every ``rate_burst`` window, labeled ``"burst"`` for the SLA scorer.
    burst_windows: tuple[TimeWindow, ...]


def burst_windows(scenario: Scenario) -> tuple[TimeWindow, ...]:
    """The scenario's burst slices (fleet-independent: times only)."""
    return tuple(
        TimeWindow("burst", event.at, event.until)
        for event in scenario
        if event.kind == "rate_burst"
    )


def region_hosts(
    scenario: Scenario, event: ScenarioEvent, fleet: "FleetConfig"
) -> tuple[str, ...]:
    """The client node(s) hosting the event's generator cohort."""
    lo, hi = _cohort(scenario, event, fleet)
    return tuple(
        sorted(
            {
                fleet.client_nodes[fleet.node_index(gen_id)]
                for gen_id in range(lo, hi)
            }
        )
    )


def _cohort(
    scenario: Scenario, event: ScenarioEvent, fleet: "FleetConfig"
) -> tuple[int, int]:
    if event.region is None:
        return 0, fleet.n_generators
    return scenario.region_range(event.region, fleet.n_generators)


def _lower_burst(
    rates: RateSchedule, event: ScenarioEvent, lo: int, hi: int
) -> None:
    if event.multiplier == 1.0:
        return
    start = event.at
    if event.ramp > 0.0:
        step = event.ramp / RAMP_STEPS
        for i in range(RAMP_STEPS):
            fraction = (i + 1) / RAMP_STEPS
            multiplier = 1.0 + (event.multiplier - 1.0) * fraction
            rates.window(
                start + i * step, start + (i + 1) * step, lo, hi, multiplier
            )
        start += event.ramp
    if start < event.until:
        rates.window(start, event.until, lo, hi, event.multiplier)


def compile_scenario(
    scenario: Scenario, fleet: "FleetConfig"
) -> CompiledScenario:
    """Lower ``scenario`` onto a fleet: rate schedule + fault-plan fragment."""
    rates = RateSchedule()
    faults = FaultPlan()
    for event in scenario:
        lo, hi = _cohort(scenario, event, fleet)
        if lo >= hi:
            continue  # fewer generators than regions: empty cohort
        if event.kind == "rate_burst":
            _lower_burst(rates, event, lo, hi)
        elif event.kind == "substation_outage":
            hosts = region_hosts(scenario, event, fleet)
            faults.partition(event.at, event.duration, hosts)
            rates.window(event.at, event.until, lo, hi, 0.0)
        elif event.kind == "link_degrade":
            for host in region_hosts(scenario, event, fleet):
                faults.packet_loss(
                    event.at, event.duration, event.loss, src=host
                )
    return CompiledScenario(
        scenario=scenario,
        rates=rates,
        faults=faults,
        burst_windows=burst_windows(scenario),
    )


def arm_scenario(
    scenario, measure_since: float, duration: float, fleet: "FleetConfig"
) -> tuple["FleetConfig", Optional[CompiledScenario]]:
    """Resolve and lower ``scenario`` onto a run's fleet config.

    ``scenario`` is a :class:`Scenario`, a template callable
    ``(measure_since, duration) -> Scenario``, or ``None``.  Returns the
    fleet config with the compiled rate schedule threaded in (the run
    functions hand it to their fleets), plus the compiled scenario whose
    fault fragment still needs merging — see :func:`merge_fault_plan`.
    """
    if scenario is None:
        return fleet, None
    concrete = (
        scenario(measure_since, duration) if callable(scenario) else scenario
    )
    compiled = compile_scenario(concrete, fleet)
    return dataclasses.replace(fleet, rates=compiled.rates), compiled


def merge_fault_plan(
    compiled: Optional[CompiledScenario], plan: Optional[FaultPlan]
) -> Optional[FaultPlan]:
    """Compose the scenario's fault fragment with a user ``--fault-plan``."""
    if compiled is None or not len(compiled.faults):
        return plan
    if plan is None:
        return compiled.faults
    return compiled.faults.merge(plan)
