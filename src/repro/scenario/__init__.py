"""repro.scenario — the grid scenario engine.

One scenario script drives *correlated* workload bursts and infrastructure
faults — the coupled perturbations a real grid event produces — and its
outcome is scored against the paper's §I soft-real-time SLA, per
middleware, as a scorecard.

The pipeline:

1. **Author** (:mod:`~repro.scenario.events`,
   :mod:`~repro.scenario.library`): a :class:`Scenario` is a named, pure
   timeline of regional events — ``alarm_storm`` (rate burst with ramp),
   ``substation_outage`` (partition + publisher die-off),
   ``link_degrade`` (loss window).  :data:`SCENARIOS` holds the library
   (storm front, cascading trip, alarm storm, dispatch surge) as templates
   of the measurement window, like :data:`repro.faults.PLANS`.
2. **Compile** (:mod:`~repro.scenario.compiler`): lower the scenario onto a
   concrete fleet — a :class:`~repro.powergrid.rates.RateSchedule` for the
   workload side and a :class:`~repro.faults.FaultPlan` fragment for the
   infrastructure side.  The run functions of all three middlewares (plus
   the federation and edge tiers) accept ``scenario=`` and arm both.
3. **Score** (:mod:`~repro.scenario.sla`): deadline-miss %, loss %,
   duplicate %, and during-burst vs steady-state P99 per leg, rendered at
   fixed precision so equal seeds give byte-identical scorecards.

``repro.harness`` exposes this as the ``scenario_threeway`` and
``scenario_edge_storm`` experiments (``--scenario`` picks the script).
"""

from repro.scenario.compiler import (
    RAMP_STEPS,
    CompiledScenario,
    arm_scenario,
    burst_windows,
    compile_scenario,
    merge_fault_plan,
    region_hosts,
)
from repro.scenario.events import EVENT_KINDS, Scenario, ScenarioEvent
from repro.scenario.library import (
    SCENARIOS,
    ScenarioTemplate,
    alarm_storm,
    cascading_trip,
    dispatch_surge,
    named_scenario,
    storm_front,
)
from repro.scenario.sla import (
    DEADLINE_S,
    SCORECARD_HEADERS,
    LegScore,
    scorecard,
    scorecard_row,
    score_leg,
    sla_windows,
)

__all__ = [
    "CompiledScenario",
    "DEADLINE_S",
    "EVENT_KINDS",
    "LegScore",
    "RAMP_STEPS",
    "SCENARIOS",
    "SCORECARD_HEADERS",
    "Scenario",
    "ScenarioEvent",
    "ScenarioTemplate",
    "alarm_storm",
    "arm_scenario",
    "burst_windows",
    "cascading_trip",
    "compile_scenario",
    "dispatch_surge",
    "merge_fault_plan",
    "named_scenario",
    "region_hosts",
    "scorecard",
    "scorecard_row",
    "score_leg",
    "sla_windows",
    "storm_front",
]
