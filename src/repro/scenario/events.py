"""The scenario DSL: named, seeded timelines of grid events.

A :class:`Scenario` is pure data — a name, a regional decomposition of the
generator fleet, and an ordered list of :class:`ScenarioEvent` entries
pinned to absolute simulated times.  Building one draws no randomness and
arms nothing; the compiler (:mod:`repro.scenario.compiler`) lowers it onto
a concrete fleet as a :class:`~repro.powergrid.rates.RateSchedule` plus a
:class:`~repro.faults.FaultPlan`, so the *same physical event* perturbs the
publication workload and the infrastructure simultaneously — an alarm
storm is a rate burst, a substation outage is a link partition *and* a
publisher die-off, from one script.

Regions are contiguous generator-id blocks: region ``r`` of ``R`` over
``n`` generators is ``[r*n//R, (r+1)*n//R)`` — aligned with the fleets'
block assignment of generators to client nodes, so a region maps onto the
node(s) physically hosting it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

#: Event kinds the compiler understands.
EVENT_KINDS = ("rate_burst", "substation_outage", "link_degrade")


@dataclass(frozen=True)
class ScenarioEvent:
    """One timed grid event.

    ``region`` selects a generator cohort (``None`` = the whole fleet);
    workload parameters (``multiplier``, ``ramp``) apply to ``rate_burst``
    events, fault parameters (``loss``) to ``link_degrade``.
    """

    kind: str
    #: Absolute simulated start time.
    at: float
    #: Window length; every scenario event has one.
    duration: float
    #: Region index, or ``None`` for fleet-wide events.
    region: Optional[int] = None
    #: Rate multiplier during the window (``rate_burst``).
    multiplier: float = 1.0
    #: Seconds spent climbing linearly from 1x to ``multiplier``.
    ramp: float = 0.0
    #: Per-fragment datagram loss probability (``link_degrade``).
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown scenario event kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("event time must be >= 0")
        if self.duration <= 0:
            raise ValueError("event duration must be > 0")
        if self.multiplier < 0:
            raise ValueError("rate multiplier must be >= 0")
        if not 0.0 <= self.ramp <= self.duration:
            raise ValueError("ramp must be within [0, duration]")
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")

    @property
    def until(self) -> float:
        return self.at + self.duration

    def key(self) -> tuple:
        return (
            self.kind, self.at, self.duration, self.region,
            self.multiplier, self.ramp, self.loss,
        )


@dataclass
class Scenario:
    """A builder-style named timeline of grid events."""

    name: str
    #: How many contiguous-id regions the fleet is divided into.
    n_regions: int = 4
    description: str = ""
    events: list[ScenarioEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_regions < 1:
            raise ValueError("a scenario needs at least one region")

    # ------------------------------------------------------------- builders
    def alarm_storm(
        self,
        at: float,
        duration: float,
        region: Optional[int] = None,
        multiplier: float = 8.0,
        ramp: float = 0.0,
    ) -> "Scenario":
        """Multiply a region's (or the fleet's) publication rate: every
        generator in the cohort raises correlated alarms for the window."""
        return self._add(
            ScenarioEvent(
                "rate_burst", at, duration, region=region,
                multiplier=multiplier, ramp=ramp,
            )
        )

    def substation_outage(
        self, at: float, duration: float, region: int
    ) -> "Scenario":
        """Take a region's substation down: the client node(s) hosting its
        generators partition off the LAN and the generators stop publishing
        (die-off) until the window lifts."""
        return self._add(
            ScenarioEvent("substation_outage", at, duration, region=region)
        )

    def link_degrade(
        self,
        at: float,
        duration: float,
        region: Optional[int] = None,
        loss: float = 0.25,
    ) -> "Scenario":
        """Degrade the region's uplinks (storm damage short of an outage):
        per-fragment datagram loss on traffic leaving its host node(s)."""
        return self._add(
            ScenarioEvent(
                "link_degrade", at, duration, region=region, loss=loss
            )
        )

    # ------------------------------------------------------------- plumbing
    def _add(self, event: ScenarioEvent) -> "Scenario":
        if event.region is not None and not (
            0 <= event.region < self.n_regions
        ):
            raise ValueError(
                f"region {event.region} out of range for "
                f"{self.n_regions} regions"
            )
        self.events.append(event)
        self.events.sort(key=lambda e: (e.at, e.kind))
        return self

    def region_range(self, region: int, n_generators: int) -> tuple[int, int]:
        """[lo, hi) of generator ids in ``region`` for a concrete fleet."""
        if not 0 <= region < self.n_regions:
            raise ValueError(
                f"region {region} out of range for {self.n_regions} regions"
            )
        lo = region * n_generators // self.n_regions
        hi = (region + 1) * n_generators // self.n_regions
        return lo, hi

    def __iter__(self) -> Iterator[ScenarioEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Scenario {self.name!r}: {len(self.events)} events>"

    def cache_key(self) -> tuple:
        """Stable tuple for sweep-cache keys."""
        return (
            self.name,
            self.n_regions,
            tuple(e.key() for e in self.events),
        )
