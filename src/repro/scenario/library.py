"""The scenario library: named grid days, parameterized by the window.

A template maps the steady-state measurement window onto a concrete
:class:`~repro.scenario.events.Scenario` — ``template(measure_since,
duration)`` — mirroring :data:`repro.faults.PLANS`, so the same
``--scenario storm_front`` lands its events inside the measured window at
every scale preset and for every middleware's (different) warmup length.

Four scripted days:

``storm_front``
    A weather front crossing the grid west to east: each region raises a
    correlated alarm burst in turn, ramping up as the front arrives.  Pure
    workload (no infrastructure faults), so the plog ``acks=all`` leg must
    score 0 duplicates — the benchmark's shape gate.
``cascading_trip``
    A substation trips offline; the neighboring region picks up its load
    and its telemetry rate surges; ``propagation`` seconds later the surge
    trips *that* region's substation too.  Workload and faults feed each
    other — the scenario engine's reason to exist.
``alarm_storm``
    Fleet-wide correlated alarms (a frequency excursion every device sees
    at once): one tall burst with a short ramp.
``dispatch_surge``
    A storage-fleet dispatch signal: every battery site starts reporting
    state-of-charge at a higher rate for half the window.  Broad and
    shallow where ``alarm_storm`` is sharp and tall.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.scenario.events import Scenario

#: A template maps the measurement window onto a concrete scenario.
ScenarioTemplate = Callable[[float, float], Scenario]


def storm_front(measure_since: float, duration: float) -> Scenario:
    """A moving regional burst: each of 4 regions surges in turn."""
    scenario = Scenario(
        "storm_front",
        n_regions=4,
        description="weather front sweeps the regions west to east",
    )
    burst = 0.25 * duration
    for region in range(scenario.n_regions):
        scenario.alarm_storm(
            at=measure_since + (0.05 + 0.17 * region) * duration,
            duration=burst,
            region=region,
            multiplier=6.0,
            ramp=0.25 * burst,
        )
    return scenario


def cascading_trip(
    measure_since: float, duration: float, propagation: float = 0.08
) -> Scenario:
    """Fault -> neighbor overload -> next fault, ``propagation``·duration apart."""
    scenario = Scenario(
        "cascading_trip",
        n_regions=4,
        description="substation trip cascades through neighboring regions",
    )
    step = propagation * duration
    outage = 0.2 * duration
    surge = 0.25 * duration
    t = measure_since + 0.15 * duration
    for region in range(2):
        scenario.substation_outage(at=t, duration=outage, region=region)
        scenario.alarm_storm(
            at=t + step,
            duration=surge,
            region=region + 1,
            multiplier=5.0,
            ramp=0.2 * surge,
        )
        t += 2 * step
    return scenario


def alarm_storm(measure_since: float, duration: float) -> Scenario:
    """One fleet-wide correlated alarm burst, tall with a short ramp."""
    scenario = Scenario(
        "alarm_storm",
        n_regions=4,
        description="fleet-wide correlated alarms (frequency excursion)",
    )
    burst = 0.3 * duration
    scenario.alarm_storm(
        at=measure_since + 0.3 * duration,
        duration=burst,
        region=None,
        multiplier=8.0,
        ramp=0.1 * burst,
    )
    return scenario


def dispatch_surge(measure_since: float, duration: float) -> Scenario:
    """Storage-fleet dispatch: broad, shallow fleet-wide rate lift."""
    scenario = Scenario(
        "dispatch_surge",
        n_regions=4,
        description="storage fleet dispatched; state-of-charge reporting surges",
    )
    scenario.alarm_storm(
        at=measure_since + 0.2 * duration,
        duration=0.5 * duration,
        region=None,
        multiplier=3.0,
        ramp=0.05 * duration,
    )
    return scenario


#: ``--scenario`` registry: name -> template.
SCENARIOS: Dict[str, ScenarioTemplate] = {
    "storm_front": storm_front,
    "cascading_trip": cascading_trip,
    "alarm_storm": alarm_storm,
    "dispatch_surge": dispatch_surge,
}


def named_scenario(name: str) -> ScenarioTemplate:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
