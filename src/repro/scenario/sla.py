"""SLA scoring: one scenario leg -> one scorecard row.

The paper's §I contract — soft real time, delivery within seconds, late or
lost below a small fraction — becomes a per-leg :class:`LegScore` computed
over the measurement window from the same record book every other metric
uses: deadline-miss % (late *or* lost, against the 5 s soft-real-time
deadline), loss %, duplicate % (redeliveries the receiver suppressed), and
during-burst vs steady-state P99 RTT sliced by *send* time through
:class:`~repro.telemetry.windows.WindowedQuantiles`.

Everything here is pure arithmetic over finished runs, and every number is
formatted at fixed precision — two runs with the same seed render
byte-identical scorecards (asserted by ``tests/harness/test_scenario.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.telemetry.windows import (
    TimeWindow,
    WindowedQuantiles,
    complement_windows,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.records import RecordBook

#: §I's soft-real-time delivery deadline (seconds).
DEADLINE_S = 5.0


@dataclass(frozen=True)
class LegScore:
    """One middleware leg's SLA numbers for one scenario."""

    label: str
    sent: int
    delivered: int
    duplicates: int
    #: Late (RTT > deadline) or lost, as % of sent.
    deadline_miss_pct: float
    #: Lost (never delivered), as % of sent.
    loss_pct: float
    #: Suppressed redeliveries, as % of delivered.
    duplicate_pct: float
    #: P99 RTT (ms) over messages *sent* during a burst window.
    burst_p99_ms: float
    #: P99 RTT (ms) over messages sent in calm air.
    steady_p99_ms: float

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "sent": self.sent,
            "delivered": self.delivered,
            "duplicates": self.duplicates,
            "deadline_miss_pct": self.deadline_miss_pct,
            "loss_pct": self.loss_pct,
            "duplicate_pct": self.duplicate_pct,
            "burst_p99_ms": self.burst_p99_ms,
            "steady_p99_ms": self.steady_p99_ms,
        }


def sla_windows(
    burst: Sequence[TimeWindow], measure_since: float, stop_at: float
) -> tuple[TimeWindow, ...]:
    """Burst windows clipped to the measurement window, plus the steady
    complement — together they tile ``[measure_since, stop_at)``."""
    clipped = tuple(
        TimeWindow("burst", max(w.start, measure_since), min(w.end, stop_at))
        for w in burst
        if w.end > measure_since and w.start < stop_at
    )
    steady = complement_windows(clipped, measure_since, stop_at, "steady")
    return clipped + steady


def score_leg(
    label: str,
    book: "RecordBook",
    *,
    measure_since: float,
    stop_at: float,
    burst: Sequence[TimeWindow],
    duplicates: int = 0,
    deadline_s: float = DEADLINE_S,
) -> LegScore:
    """Score one finished run's record book against the scenario SLA."""
    records = [
        r
        for r in book.records
        if measure_since <= r.t_before_send < stop_at
    ]
    sent = len(records)
    delivered = [r for r in records if r.delivered]
    lost = sent - len(delivered)
    late = sum(1 for r in delivered if r.rtt > deadline_s)

    quantiles = WindowedQuantiles(sla_windows(burst, measure_since, stop_at))
    for record in delivered:
        quantiles.observe(record.t_before_send, record.rtt)

    def _pct(num: int, denom: int) -> float:
        return 100.0 * num / denom if denom else 0.0

    def _p99(window_label: str) -> float:
        if window_label not in quantiles.labels:
            return float("nan")
        return quantiles.p99_ms(window_label)

    return LegScore(
        label=label,
        sent=sent,
        delivered=len(delivered),
        duplicates=duplicates,
        deadline_miss_pct=_pct(late + lost, sent),
        loss_pct=_pct(lost, sent),
        duplicate_pct=_pct(duplicates, len(delivered)),
        burst_p99_ms=_p99("burst"),
        steady_p99_ms=_p99("steady"),
    )


SCORECARD_HEADERS = (
    "leg",
    "sent",
    "delivered",
    "deadline miss",
    "loss",
    "dup",
    "burst P99 (ms)",
    "steady P99 (ms)",
)


def _fmt_ms(value: float) -> str:
    return "n/a" if value != value else f"{value:.3f}"  # NaN check


def scorecard_row(score: LegScore) -> tuple[str, ...]:
    """One leg as fixed-precision strings (same seed => same bytes)."""
    return (
        score.label,
        str(score.sent),
        str(score.delivered),
        f"{score.deadline_miss_pct:.3f}%",
        f"{score.loss_pct:.3f}%",
        f"{score.duplicate_pct:.3f}%",
        _fmt_ms(score.burst_p99_ms),
        _fmt_ms(score.steady_p99_ms),
    )


def scorecard(
    scores: Sequence[LegScore],
) -> tuple[tuple[str, ...], list[tuple[str, ...]]]:
    """(headers, rows) in ``ExperimentResult.table`` form."""
    return SCORECARD_HEADERS, [scorecard_row(s) for s in scores]
