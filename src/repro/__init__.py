"""repro — reproduction of Huang et al., "A Study of Publish/Subscribe
Systems for Real-Time Grid Monitoring" (IPDPS 2007).

The package builds, entirely in Python, the two middleware systems the paper
benchmarks — a JMS-compliant NaradaBrokering-like broker and the Relational
Grid Monitoring Architecture (R-GMA) — on top of a deterministic
discrete-event model of the paper's 8-node cluster testbed, plus the
power-grid monitoring workload and the measurement harness that regenerates
every figure and table in the paper's evaluation.

Quickstart::

    from repro.harness import runner
    result = runner.run("fig7", scale=0.25)
    print(result.render())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
