"""UDP datagrams, with the optional ack protocol JMS forces onto them.

The paper's surprise result (§III.E.1): "The results of UDP test are
surprisingly high [RTT].  The possible reason is that we used JMS over UDP.
UDP is connectionless which has no guarantee whether a packet will be
received or not, but JMS requires an acknowledgement.  The way that Narada
acknowledges the messages severely slows the performance down."

Model: a raw datagram may be lost (random per-fragment loss or socket-buffer
overflow).  In ``acked`` mode — which Narada needs to give JMS semantics on
UDP — every datagram is followed by an ack datagram from the receiver, the
sender retransmits on an RTO timer, and gives up after ``max_retries``
(surfacing as message loss: the paper measured 0.06 %).  Each ack is a real
datagram: it consumes LAN capacity and CPU on both ends, doubling the
per-message work and inflating RTT mean and deviation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.cluster.network import FRAME_OVERHEAD_UDP
from repro.sim.events import Event
from repro.transport.base import (
    Channel,
    CostModel,
    MessageLost,
    TransportError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.network import Lan
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator

ACK_BYTES = 32


class UdpChannel(Channel):
    """A pseudo-connection: a (src, dst, port) association for datagrams."""

    server_mode = "datagram"

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        label: str,
        lan: "Lan",
        cost_model: CostModel,
        loss_probability: float,
        acked: bool,
        rto: float,
        max_retries: int,
    ):
        super().__init__(sim, node, label)
        self.lan = lan
        self.cost_model = cost_model
        self.loss_probability = loss_probability
        self.acked = acked
        self.rto = rto
        self.max_retries = max_retries
        #: Counters for loss accounting.
        self.datagrams_sent = 0
        self.datagrams_lost = 0
        self.retransmissions = 0

    # ------------------------------------------------------------ transfer
    def _transfer(self, payload: Any, nbytes: float) -> Generator[Any, Any, Event]:
        if self.acked:
            ev = yield from self._send_acked(payload, nbytes)
            return ev
        ev = self._send_raw(payload, nbytes)
        if ev is None:
            self.datagrams_lost += 1
            raise MessageLost(f"datagram dropped on {self.label}")
        return ev

    def _send_raw(
        self, payload: Any, nbytes: float, dedupe: Optional[dict] = None
    ) -> Optional[Event]:
        """Fire one datagram; returns its delivery event or None if dropped.

        ``dedupe`` (shared across retransmissions of one logical message)
        suppresses duplicate inbox deliveries when a datagram arrived but its
        ack was lost — real receivers discard duplicates by message id.
        """
        self.datagrams_sent += 1
        sent_at = self.sim.now
        wire_ev = self.lan.transmit(
            self.host,
            self.peer_host,
            nbytes,
            droppable=True,
            loss_probability=self.loss_probability,
            overhead=FRAME_OVERHEAD_UDP,
        )
        if wire_ev is None:
            return None
        done = self.sim.event()
        peer = self.peer
        assert peer is not None

        def on_wire(_ev: Event) -> None:
            if dedupe is None or not dedupe.get("delivered"):
                if dedupe is not None:
                    dedupe["delivered"] = True
                peer._deliver(payload, nbytes, sent_at)
            done.succeed(self.sim.now - sent_at)

        wire_ev.add_callback(on_wire)
        return done

    def _send_acked(self, payload: Any, nbytes: float) -> Generator[Any, Any, Event]:
        """Stop-and-wait with retransmission; raises MessageLost on give-up."""
        attempts = 0
        dedupe: dict = {"delivered": False}
        while True:
            delivery = self._send_raw(payload, nbytes, dedupe)
            ack = self.sim.event() if delivery is None else None
            if delivery is not None:
                # The receiver side acks after the datagram arrives: model the
                # ack as a return datagram scheduled at delivery time, costing
                # CPU on the receiving node.
                ack = self._schedule_ack(delivery)
            deadline = self.sim.timeout(self.rto)
            outcome = yield self.sim.any_of([ack, deadline])
            if ack in outcome:
                return delivery  # type: ignore[return-value]
            attempts += 1
            self.retransmissions += 1
            if attempts > self.max_retries:
                self.datagrams_lost += 1
                raise MessageLost(
                    f"{self.label}: no ack after {attempts} attempts"
                )

    def _schedule_ack(self, delivery: Event) -> Event:
        """Ack datagram flowing back; may itself be lost."""
        ack_received = self.sim.event()
        peer = self.peer
        assert peer is not None

        def on_delivered(_ev: Event) -> None:
            # Receiver CPU to generate the ack.
            def ack_job() -> Generator[Any, Any, None]:
                yield from peer.node.execute(self.cost_model.send_cost(ACK_BYTES))
                wire = self.lan.transmit(
                    self.peer_host,
                    self.host,
                    ACK_BYTES,
                    droppable=True,
                    loss_probability=self.loss_probability,
                    overhead=FRAME_OVERHEAD_UDP,
                )
                if wire is None:
                    return  # ack lost; sender will retransmit
                yield wire
                if not ack_received.triggered:
                    ack_received.succeed()

            self.sim.process(ack_job(), name=f"{self.label}.ack")

        delivery.add_callback(on_delivered)
        return ack_received


class UdpTransport:
    """Datagram channel factory.

    Parameters
    ----------
    loss_probability:
        Per-fragment random loss on the (otherwise clean) LAN — models NIC
        and kernel buffer misses under burst load.
    acked:
        When True, channels run the stop-and-wait ack protocol (JMS mode).
    rto:
        Retransmission timeout (seconds).
    max_retries:
        Retransmissions before the message is declared lost.
    """

    def __init__(
        self,
        sim: "Simulator",
        lan: "Lan",
        cost_model: Optional[CostModel] = None,
        loss_probability: float = 0.004,
        acked: bool = True,
        rto: float = 0.2,
        max_retries: int = 2,
    ):
        self.sim = sim
        self.lan = lan
        self.cost_model = cost_model or CostModel()
        self.loss_probability = loss_probability
        self.acked = acked
        self.rto = rto
        self.max_retries = max_retries
        self._listeners: dict[tuple[str, int], tuple["Node", Callable[[Channel], None]]] = {}

    def listen(
        self, node: "Node", port: int, acceptor: Callable[[Channel], None]
    ) -> None:
        key = (node.name, port)
        if key in self._listeners:
            raise TransportError(f"port {port} already bound on {node.name}")
        self._listeners[key] = (node, acceptor)

    def unlisten(self, node: "Node", port: int) -> None:
        self._listeners.pop((node.name, port), None)

    def connect(
        self, client_node: "Node", server_host: str, port: int
    ) -> Generator[Any, Any, Channel]:
        """No handshake on UDP: create the association immediately.

        Still a generator for interface parity with TCP (a Narada client
        performs an application-level hello, modelled as one datagram)."""
        key = (server_host, port)
        if key not in self._listeners:
            raise TransportError(f"no UDP listener at {server_host}:{port}")
        server_node, acceptor = self._listeners[key]
        label = f"udp:{client_node.name}->{server_host}:{port}"

        def mk(node: "Node", suffix: str) -> UdpChannel:
            return UdpChannel(
                self.sim,
                node,
                label + suffix,
                self.lan,
                self.cost_model,
                self.loss_probability,
                self.acked,
                self.rto,
                self.max_retries,
            )

        client_end = mk(client_node, "#c")
        server_end = mk(server_node, "#s")
        client_end.peer = server_end
        server_end.peer = client_end
        hello = self.lan.transmit(client_node.name, server_host, ACK_BYTES)
        if hello is not None:
            yield hello
        acceptor(server_end)
        return client_end
