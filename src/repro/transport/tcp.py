"""Blocking TCP: connection handshake + reliable in-order delivery.

The paper's verdict: "TCP is a very stable transport protocol and has
excellent performance" (§III.E.1).  On a lossless switched LAN the protocol
reduces to serialisation + queueing + a per-segment CPU charge, which is what
this model implements.  Reliability machinery (retransmission) never fires
because the LAN never drops stream traffic; what distinguishes transports in
the comparison experiment is their *ack behaviour* (UDP) and *server
threading* (NIO), not TCP's sliding window.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.cluster.network import FRAME_OVERHEAD_TCP
from repro.sim.events import Event
from repro.transport.base import (
    Channel,
    ChannelClosed,
    CostModel,
    TransportError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.network import Lan
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator

#: Bytes on the wire for SYN / SYN-ACK / ACK handshake frames.
HANDSHAKE_FRAME_BYTES = 64


class TcpChannel(Channel):
    """One end of an established TCP connection."""

    #: Threading hint servers use: "blocking" = thread per connection.
    server_mode = "blocking"

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        label: str,
        lan: "Lan",
        cost_model: CostModel,
    ):
        super().__init__(sim, node, label)
        self.lan = lan
        self.cost_model = cost_model
        # In-order delivery: segments are sequenced at send time and
        # reassembled at the receiver — LAN jitter may complete wire events
        # out of order, but a stream must never reorder.
        self._send_seq = 0
        self._deliver_seq = 0
        self._arrived: dict[int, tuple[Any, float, float, Event]] = {}

    def _transfer(self, payload: Any, nbytes: float) -> Generator[Any, Any, Event]:
        """Hand bytes to the kernel; returns the delivery event immediately.

        Blocking TCP ``send()`` returns once the data is in the socket buffer
        (these messages are far below the buffer size), so the sender does
        not wait for delivery.
        """
        sent_at = self.sim.now
        seq = self._send_seq
        self._send_seq += 1
        wire_ev = self.lan.transmit(
            self.host, self.peer_host, nbytes, overhead=FRAME_OVERHEAD_TCP
        )
        assert wire_ev is not None  # stream traffic is never dropped
        done = self.sim.event()

        def on_wire(_ev: Event) -> None:
            self._arrived[seq] = (payload, nbytes, sent_at, done)
            self._flush_in_order()

        wire_ev.add_callback(on_wire)
        if False:  # pragma: no cover - keeps this a generator function
            yield
        return done

    def _flush_in_order(self) -> None:
        """Deliver every consecutive segment that has arrived."""
        peer = self.peer
        assert peer is not None
        while self._deliver_seq in self._arrived:
            payload, nbytes, sent_at, done = self._arrived.pop(self._deliver_seq)
            self._deliver_seq += 1
            peer._deliver(payload, nbytes, sent_at)
            done.succeed(self.sim.now - sent_at)


class TcpTransport:
    """Connection factory: ``listen`` on a node, ``connect`` from another."""

    channel_class = TcpChannel

    def __init__(self, sim: "Simulator", lan: "Lan", cost_model: Optional[CostModel] = None):
        self.sim = sim
        self.lan = lan
        self.cost_model = cost_model or CostModel()
        self._listeners: dict[tuple[str, int], tuple["Node", Callable[[Channel], None]]] = {}

    def listen(
        self, node: "Node", port: int, acceptor: Callable[[Channel], None]
    ) -> None:
        """Register ``acceptor`` to be called with the server-side channel of
        every new connection to ``node:port``."""
        key = (node.name, port)
        if key in self._listeners:
            raise TransportError(f"port {port} already bound on {node.name}")
        self._listeners[key] = (node, acceptor)

    def unlisten(self, node: "Node", port: int) -> None:
        self._listeners.pop((node.name, port), None)

    def connect(
        self, client_node: "Node", server_host: str, port: int
    ) -> Generator[Any, Any, Channel]:
        """Three-way handshake; returns the client-side channel.

        Raises :class:`TransportError` when nothing listens on the target.
        """
        key = (server_host, port)
        if key not in self._listeners:
            raise TransportError(f"connection refused: {server_host}:{port}")
        server_node, acceptor = self._listeners[key]

        # SYN →
        syn = self.lan.transmit(
            client_node.name, server_host, HANDSHAKE_FRAME_BYTES
        )
        assert syn is not None
        yield syn
        # Server-side accept cost, then channel pair creation.
        yield from server_node.execute(self.cost_model.syscall)
        label = f"tcp:{client_node.name}->{server_host}:{port}"
        client_end = self.channel_class(
            self.sim, client_node, label + "#c", self.lan, self.cost_model
        )
        server_end = self.channel_class(
            self.sim, server_node, label + "#s", self.lan, self.cost_model
        )
        client_end.peer = server_end
        server_end.peer = client_end
        # ← SYN-ACK (the final ACK piggybacks on first data, not modelled).
        synack = self.lan.transmit(
            server_host, client_node.name, HANDSHAKE_FRAME_BYTES
        )
        assert synack is not None
        # The acceptor learns about the connection when the handshake
        # completes server-side; it may raise (e.g. OutOfMemory in a
        # thread-per-connection server), which propagates to the connector
        # as a refused connection.
        acceptor(server_end)
        yield synack
        return client_end
