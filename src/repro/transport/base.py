"""Common transport abstractions: channels, endpoints, cost model.

A :class:`Channel` is one end of a bidirectional conversation between two
hosts.  ``send`` is a *generator* (used with ``yield from`` inside a process)
that charges the sender's CPU, pushes bytes through the LAN model and
delivers the payload into the peer's inbox; it returns the one-way latency.
Receivers pull from their end's :meth:`Channel.receive`.

The per-operation CPU charges live in :class:`CostModel` so experiments can
calibrate or ablate them in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.sim import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.network import Lan
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator


class TransportError(Exception):
    """Base class for transport failures."""


class ChannelClosed(TransportError):
    """Raised when sending on, or receiving from, a closed channel."""


class MessageLost(TransportError):
    """An unreliable send exhausted its retries (datagram lost)."""


@dataclass(frozen=True)
class CostModel:
    """CPU charges for protocol processing on the reference PIII node.

    ``syscall`` covers the fixed cost of a send/recv system call plus
    protocol bookkeeping; ``per_byte`` covers copy + checksum work.  The
    defaults put a 1 KB message at ~60 µs of CPU per hop end, which, with the
    paper's 75 msg/s workload per simulated host, leaves CPU idle above 85 %
    on the generator nodes (§III.B) while letting a broker node saturate as
    fan-in grows.
    """

    syscall: float = 35e-6
    per_byte: float = 18e-9

    def send_cost(self, nbytes: float) -> float:
        return self.syscall + self.per_byte * nbytes

    def recv_cost(self, nbytes: float) -> float:
        return self.syscall + self.per_byte * nbytes


@dataclass
class Delivery:
    """What lands in a channel inbox."""

    payload: Any
    nbytes: float
    sent_at: float
    delivered_at: float


#: Sentinel pushed into inboxes when the peer closes the channel.
EOF = object()


class Channel:
    """One end of a bidirectional point-to-point conversation."""

    def __init__(self, sim: "Simulator", node: "Node", label: str):
        self.sim = sim
        self.node = node
        self.label = label
        self.inbox: Store = Store(sim)
        self.peer: Optional["Channel"] = None
        self.closed = False
        #: Optional push-mode hook: invoked (payload, nbytes) on delivery.
        self.on_deliver: Optional[Callable[[Delivery], None]] = None

    @property
    def host(self) -> str:
        return self.node.name

    @property
    def peer_host(self) -> str:
        assert self.peer is not None
        return self.peer.node.name

    # ------------------------------------------------------------- sending
    def send(self, payload: Any, nbytes: float) -> Generator[Any, Any, Any]:
        """Transfer ``payload`` to the peer.

        Returns the *delivery event*, which fires with the one-way latency as
        its value once the payload lands in the peer inbox.  Stream sends
        return as soon as the data is in the socket buffer (the event fires
        later); acknowledged-datagram sends only return after the ack round
        trip (the event has already fired), and raise
        :class:`~repro.transport.base.MessageLost` when retries run out.

        Concrete transports override :meth:`_transfer`; this wrapper charges
        sender CPU and enforces the closed check.
        """
        if self.closed or self.peer is None:
            raise ChannelClosed(f"send on closed channel {self.label}")
        yield from self.node.execute(self.cost_model.send_cost(nbytes))
        delivery_event = yield from self._transfer(payload, nbytes)
        return delivery_event

    # Concrete transports set this; annotated here for clarity.
    cost_model: CostModel = CostModel()

    def _transfer(self, payload: Any, nbytes: float) -> Generator[Any, Any, Any]:
        raise NotImplementedError  # pragma: no cover

    # ----------------------------------------------------------- receiving
    def receive(self):
        """Event yielding the next :class:`Delivery` (or raising on close)."""
        ev = self.inbox.get()
        return ev

    def _deliver(self, payload: Any, nbytes: float, sent_at: float) -> None:
        """Called by the peer's transfer machinery at delivery time."""
        d = Delivery(
            payload=payload,
            nbytes=nbytes,
            sent_at=sent_at,
            delivered_at=self.sim.now,
        )
        if self.on_deliver is not None:
            self.on_deliver(d)
        else:
            self.inbox.put_nowait(d)

    # -------------------------------------------------------------- close
    def close(self) -> None:
        """Close both ends; pending receivers see EOF deliveries.

        The EOF follows the same path as data: push-mode ends (a broker's
        shared selector/request queue via ``on_deliver``) see it there, so
        reactor-style servers learn about client disconnects; pull-mode ends
        see it in their inbox.
        """
        for end in (self, self.peer):
            if end is not None and not end.closed:
                end.closed = True
                d = Delivery(EOF, 0, self.sim.now, self.sim.now)
                if end.on_deliver is not None:
                    end.on_deliver(d)
                else:
                    end.inbox.put_nowait(d)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self.closed else "open"
        return f"<{type(self).__name__} {self.label} {state}>"
