"""HTTP request/response framing over TCP.

R-GMA "uses SOAP messaging over HTTP/HTTPS and Java Servlet technology to
exchange request/response" (paper §II.A) and the tests ran over plain HTTP
because of HTTPS encryption overhead (§III.F).  This module provides the
client connection (with keep-alive) and the server accept plumbing; the
servlet *container* semantics (thread pools, connector limits) live in
:mod:`repro.rgma.servlet`, which plugs in as the server's dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.transport.base import Channel, ChannelClosed, CostModel, TransportError
from repro.transport.tcp import TcpTransport

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator

#: Request line + headers (Host, Content-Length, SOAPAction, ...).
REQUEST_HEADER_BYTES = 280
#: Status line + headers.
RESPONSE_HEADER_BYTES = 180


class HttpTimeout(TransportError):
    """No response arrived within the client's request timeout."""


@dataclass
class HttpRequest:
    """A request as seen by the server dispatcher."""

    path: str
    body: Any
    body_bytes: float
    channel: Channel
    _response_event: Any = field(default=None, repr=False)


@dataclass
class HttpResponse:
    status: int
    body: Any
    body_bytes: float
    latency: float = 0.0


class HttpServer:
    """Accepts connections on (node, port) and feeds requests to a dispatcher.

    ``dispatcher(request, respond)`` is called for every request;
    ``respond(status, body, body_bytes)`` must eventually be invoked —
    typically from a servlet-container worker thread — to send the response.
    """

    def __init__(
        self,
        sim: "Simulator",
        transport: TcpTransport,
        node: "Node",
        port: int,
        dispatcher: Callable[[HttpRequest, Callable[..., None]], None],
        accept_hook: Optional[Callable[[Channel], None]] = None,
    ):
        self.sim = sim
        self.transport = transport
        self.node = node
        self.port = port
        self.dispatcher = dispatcher
        self.accept_hook = accept_hook
        self.requests_served = 0
        transport.listen(node, port, self._on_connect)

    def close(self) -> None:
        self.transport.unlisten(self.node, self.port)

    def _on_connect(self, server_end: Channel) -> None:
        if self.accept_hook is not None:
            self.accept_hook(server_end)  # may raise (connector limit / OOM)
        self.sim.process(self._read_loop(server_end), name=f"http:{self.node.name}")

    def _read_loop(self, channel: Channel) -> Generator[Any, Any, None]:
        from repro.transport.base import EOF

        while True:
            delivery = yield channel.receive()
            if delivery.payload is EOF:
                return
            # Parse cost on the server node.
            yield from self.node.execute(
                self.transport.cost_model.recv_cost(delivery.nbytes)
            )
            request: HttpRequest = delivery.payload
            self.requests_served += 1

            def respond(
                status: int, body: Any, body_bytes: float, _ch: Channel = channel
            ) -> None:
                self.sim.process(
                    self._send_response(_ch, status, body, body_bytes),
                    name="http.respond",
                )

            self.dispatcher(request, respond)

    def _send_response(
        self, channel: Channel, status: int, body: Any, body_bytes: float
    ) -> Generator[Any, Any, None]:
        if channel.closed:
            return
        payload = HttpResponse(status=status, body=body, body_bytes=body_bytes)
        yield from channel.send(payload, body_bytes + RESPONSE_HEADER_BYTES)


class HttpClient:
    """A keep-alive HTTP/1.1 client bound to one origin server."""

    def __init__(
        self,
        sim: "Simulator",
        transport: TcpTransport,
        node: "Node",
        server_host: str,
        port: int,
    ):
        self.sim = sim
        self.transport = transport
        self.node = node
        self.server_host = server_host
        self.port = port
        self._channel: Optional[Channel] = None

    def request(
        self, path: str, body: Any, body_bytes: float, timeout: Optional[float] = None
    ) -> Generator[Any, Any, HttpResponse]:
        """Round-trip a request; returns the :class:`HttpResponse`.

        The connection is established lazily and reused (keep-alive); a
        closed connection is re-established once.  With ``timeout`` set, a
        response overdue by ``timeout`` seconds raises :class:`HttpTimeout`
        and drops the connection — a late response would desynchronise
        keep-alive framing, so the socket cannot be reused.
        """
        started = self.sim.now
        for attempt in (0, 1):
            if self._channel is None or self._channel.closed:
                self._channel = yield from self.transport.connect(
                    self.node, self.server_host, self.port
                )
            channel = self._channel
            req = HttpRequest(
                path=path, body=body, body_bytes=body_bytes, channel=channel
            )
            try:
                yield from channel.send(req, body_bytes + REQUEST_HEADER_BYTES)
            except ChannelClosed:
                self._channel = None
                if attempt:
                    raise
                continue
            if timeout is not None:
                receive_ev = channel.receive()
                yield self.sim.any_of([receive_ev, self.sim.timeout(timeout)])
                if not receive_ev.triggered:
                    channel.close()
                    self._channel = None
                    raise HttpTimeout(
                        f"no response from {self.server_host}:{self.port} "
                        f"within {timeout}s"
                    )
                delivery = receive_ev.value
            else:
                delivery = yield channel.receive()
            from repro.transport.base import EOF

            if delivery.payload is EOF:
                self._channel = None
                if attempt:
                    raise TransportError("connection closed mid-request")
                continue
            yield from self.node.execute(
                self.transport.cost_model.recv_cost(delivery.nbytes)
            )
            response: HttpResponse = delivery.payload
            response.latency = self.sim.now - started
            return response
        raise TransportError("unreachable")  # pragma: no cover

    def close(self) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None
