"""Non-blocking TCP (java.nio style).

The bytes on the wire are identical to blocking TCP; what changes is the
*server threading model*: instead of a thread per connection parked in
``read()``, a single selector thread multiplexes all connections and hands
work to the broker.  Two measurable consequences, both visible in the
paper's Fig 3/4 (NIO slightly slower than TCP at 800 connections, but the
same order of magnitude):

* every inbound message pays an extra dispatch hop through the shared
  selector (a small fixed CPU cost and a FIFO queueing stage), and
* the server needs far fewer threads (no per-connection stack), which is the
  memory argument for NIO — exposed to the broker via ``server_mode``.
"""

from __future__ import annotations

from repro.transport.tcp import TcpChannel, TcpTransport

#: Extra CPU per message for selector wakeup + key dispatch on the server.
SELECTOR_DISPATCH_CPU = 30e-6


class NioChannel(TcpChannel):
    """Same wire behaviour as TCP; tagged for selector-based serving."""

    server_mode = "nio"


class NioTransport(TcpTransport):
    """TCP with the non-blocking server profile."""

    channel_class = NioChannel
