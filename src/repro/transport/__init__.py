"""Transport protocols over the simulated LAN.

NaradaBrokering "supports a number of underlying data transport protocols,
including blocking and non-blocking TCP, UDP, multicast, SSL, HTTP, HTTPS and
Parallel TCP streams" (paper §II.B); the comparison tests exercise UDP, NIO
and TCP (Table II) and R-GMA runs over HTTP (§III.F).  This package models
the four that the evaluation depends on, plus multicast for the extension
benches:

* :mod:`repro.transport.tcp` — blocking TCP: connection handshake, reliable
  ordered delivery.
* :mod:`repro.transport.nio` — same wire protocol; differs on the *server
  threading model* (shared selector), which is where the paper's TCP-vs-NIO
  gap comes from.
* :mod:`repro.transport.udp` — unreliable datagrams with optional
  transport-level acknowledgement + retransmission (the "JMS over UDP"
  pathology of §III.E.1).
* :mod:`repro.transport.http` — request/response framing on TCP for R-GMA.
* :mod:`repro.transport.multicast` — one-to-many datagram fan-out.
"""

from repro.transport.base import (
    Channel,
    ChannelClosed,
    CostModel,
    MessageLost,
    TransportError,
)
from repro.transport.tcp import TcpTransport
from repro.transport.nio import NioTransport
from repro.transport.udp import UdpTransport
from repro.transport.http import HttpClient, HttpRequest, HttpResponse, HttpServer
from repro.transport.multicast import MulticastGroup

__all__ = [
    "Channel",
    "ChannelClosed",
    "CostModel",
    "HttpClient",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "MessageLost",
    "MulticastGroup",
    "NioTransport",
    "TcpTransport",
    "TransportError",
    "UdpTransport",
]
