"""TLS/SSL over TCP: the encryption overhead the paper avoided.

"We did not use HTTPS because of the encryption overhead" (§III.F) — and
NaradaBrokering lists SSL among its transports (§II.B).  On a Pentium III,
an RSA handshake costs tens of milliseconds and symmetric encryption a few
tens of nanoseconds per byte on each side; both are modelled here so the
avoided overhead can be measured (`ablation_rgma_https`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.transport.base import CostModel
from repro.transport.tcp import TcpChannel, TcpTransport

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.transport.base import Channel

#: Asymmetric-crypto CPU per handshake side (RSA-1024 on a PIII ~ tens of ms).
TLS_HANDSHAKE_CPU = 0.045
#: Extra handshake bytes (ClientHello/ServerHello/certificate/key exchange).
TLS_HANDSHAKE_BYTES = 2600
#: Symmetric encrypt/decrypt CPU per byte per side (3DES-era software crypto).
TLS_PER_BYTE_CPU = 90e-9
#: TLS record framing overhead per message.
TLS_RECORD_OVERHEAD = 29


class TlsChannel(TcpChannel):
    """TCP channel with per-byte crypto charged on both ends."""

    def send(self, payload: Any, nbytes: float) -> Generator[Any, Any, Any]:
        # Encrypt cost on the sender before the normal TCP path; the
        # receiver's decrypt cost piggybacks on delivery.
        yield from self.node.execute(TLS_PER_BYTE_CPU * nbytes)
        event = yield from super().send(payload, nbytes + TLS_RECORD_OVERHEAD)
        return event

    def _deliver(self, payload: Any, nbytes: float, sent_at: float) -> None:
        # Decrypt: charged as a fire-and-forget CPU job on the receiving
        # node (the reading thread additionally pays its normal recv cost).
        self.node.execute_process(TLS_PER_BYTE_CPU * nbytes)
        super()._deliver(payload, nbytes, sent_at)


class TlsTransport(TcpTransport):
    """TCP + TLS handshake + per-byte encryption."""

    channel_class = TlsChannel

    def connect(
        self, client_node: "Node", server_host: str, port: int
    ) -> Generator[Any, Any, "Channel"]:
        channel = yield from super().connect(client_node, server_host, port)
        # TLS handshake: certificate exchange bytes + asymmetric crypto on
        # both sides (serialised: client waits for the server's part).
        server_node = channel.peer.node
        hello = self.lan.transmit(
            client_node.name, server_host, TLS_HANDSHAKE_BYTES
        )
        assert hello is not None
        yield hello
        yield from server_node.execute(TLS_HANDSHAKE_CPU)
        done = self.lan.transmit(server_host, client_node.name, 220)
        assert done is not None
        yield done
        yield from client_node.execute(TLS_HANDSHAKE_CPU)
        return channel
