"""IP-multicast-style one-to-many datagram fan-out.

NaradaBrokering lists multicast among its transports (paper §II.B); the
paper's experiments do not exercise it, but the extension benches use it to
contrast broker-mediated dissemination with network-level fan-out.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.cluster.network import FRAME_OVERHEAD_UDP
from repro.transport.base import CostModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.network import Lan
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator


class MulticastGroup:
    """A multicast group address with subscribing hosts.

    A send costs the sender one transmission (the switch replicates frames),
    but each member's receive path is modelled individually, so a slow or
    congested member still sees queueing delay and may drop.
    """

    def __init__(
        self,
        sim: "Simulator",
        lan: "Lan",
        address: str,
        cost_model: Optional[CostModel] = None,
        loss_probability: float = 0.0,
    ):
        self.sim = sim
        self.lan = lan
        self.address = address
        self.cost_model = cost_model or CostModel()
        self.loss_probability = loss_probability
        self._members: dict[str, Callable[[Any, float], None]] = {}

    def join(self, node: "Node", handler: Callable[[Any, float], None]) -> None:
        """Subscribe ``node``; ``handler(payload, latency)`` runs on delivery."""
        self._members[node.name] = handler

    def leave(self, node: "Node") -> None:
        self._members.pop(node.name, None)

    @property
    def member_count(self) -> int:
        return len(self._members)

    def send(
        self, sender: "Node", payload: Any, nbytes: float
    ) -> Generator[Any, Any, int]:
        """Publish to the group; returns number of members reached.

        The sender pays one CPU + one NIC serialisation; receivers that drop
        (loss or buffer overflow) are simply not counted.
        """
        yield from sender.execute(self.cost_model.send_cost(nbytes))
        sent_at = self.sim.now
        wire = self.lan.wire_bytes(nbytes, FRAME_OVERHEAD_UDP)
        frags = self.lan.frame_count(nbytes)
        # One transmit-side serialisation regardless of group size: the
        # switch replicates the frames to member ports.
        tx_done = self.lan.tx_link(sender.name).serialize(wire, droppable=True)
        if tx_done is None:
            return 0
        reached = 0
        for host, handler in list(self._members.items()):
            if host == sender.name:
                continue
            p_msg = 1.0 - (1.0 - self.loss_probability) ** frags
            if (
                self.loss_probability > 0.0
                and self.sim.rng.random(f"mcast.loss.{self.address}.{host}") < p_msg
            ):
                continue
            lag = max(0.0, tx_done + self.lan.switch_latency - self.sim.now)
            rx_done = self.lan._serialize_at(
                self.lan.rx_link(host), wire, lag, droppable=True
            )
            if rx_done is None:
                continue
            reached += 1
            jitter = self.sim.rng.exponential(
                f"mcast.jitter.{sender.name}->{host}", self.lan.jitter_mean
            )

            def fire(h: Callable[[Any, float], None] = handler) -> None:
                h(payload, self.sim.now - sent_at)

            self.sim.call_at(rx_done + jitter, fire)
        return reached
