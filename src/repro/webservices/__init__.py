"""Web Services layer: SOAP encoding and the WS publishing proxy.

The paper deliberately did *not* test over Web Services: "Web Services are
known to be slow and not suitable for high performance scientific
computing.  The serialization and de-serialization of XML and floating
point value/ASCII conversion are the bottlenecks.  The interoperability
issue can be compensated by introducing a proxy that has a Web Services
interface" (§III.D, citing Chiu et al. [9] and the GRIDCC Instrument
Element [3]).

This package makes that argument measurable: :mod:`repro.webservices.codec`
models XML expansion and float/ASCII conversion costs;
:mod:`repro.webservices.proxy` is the compensating proxy — a SOAP/HTTP
front-end that republishes into the native broker.
"""

from repro.webservices.codec import SoapCodec
from repro.webservices.proxy import WsPublishProxy, WsPublisherClient

__all__ = ["SoapCodec", "WsPublishProxy", "WsPublisherClient"]
