"""SOAP/XML encoding model.

Two effects make Web Services slow on 2007 hardware (§III.D / Chiu et al.):

* **size** — XML tags, namespaces and base-10 rendering expand a compact
  binary payload several-fold;
* **CPU** — parsing/serialising XML is per-byte expensive, and every float
  or double pays a binary↔ASCII conversion.

The codec computes both from a :class:`~repro.jms.message.MapMessage`-like
body, so a SOAP hop's cost scales with the actual field mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.jms.message import MapMessage, Message

#: SOAP envelope + body + namespaces.
ENVELOPE_BYTES = 480
#: Per-entry XML element overhead: open/close tags + type attribute.
ELEMENT_OVERHEAD_BYTES = 34
#: Decimal rendering of a float/double ("-1.2345678901234567E-12").
FLOAT_ASCII_BYTES = 24
INT_ASCII_BYTES = 12

#: XML parse/serialise CPU per byte (each side) — an order of magnitude
#: above binary framing on the reference PIII.
XML_PER_BYTE_CPU = 0.9e-6
#: Binary <-> ASCII conversion per floating-point value, per side.
FLOAT_CONVERT_CPU = 18e-6
#: Fixed per-envelope cost (DOM setup, namespace resolution).
ENVELOPE_CPU = 0.0012


@dataclass(frozen=True)
class SoapEncoding:
    """The footprint of one SOAP-encoded message."""

    xml_bytes: int
    float_values: int
    encode_cpu: float
    decode_cpu: float


class SoapCodec:
    """Derives SOAP wire size and (de)serialisation CPU for a message."""

    def encode(self, message: Message) -> SoapEncoding:
        xml = ENVELOPE_BYTES
        floats = 0
        entries: list[tuple[str, Any]] = []
        if isinstance(message, MapMessage):
            for name in message.item_names():
                jms_type, value = message._body[name]
                entries.append((jms_type, value))
                xml += ELEMENT_OVERHEAD_BYTES + len(name)
                if jms_type in ("float", "double"):
                    floats += 1
                    xml += FLOAT_ASCII_BYTES
                elif jms_type in ("int", "long", "short", "byte"):
                    xml += INT_ASCII_BYTES
                elif jms_type == "string":
                    xml += len(str(value))
                else:
                    xml += 8
        else:
            xml += message.body_wire_size() * 3  # generic escaping expansion
        for name in message.property_names():
            xml += ELEMENT_OVERHEAD_BYTES + len(name) + INT_ASCII_BYTES
        cpu = (
            ENVELOPE_CPU
            + XML_PER_BYTE_CPU * xml
            + FLOAT_CONVERT_CPU * floats
        )
        return SoapEncoding(
            xml_bytes=int(xml),
            float_values=floats,
            encode_cpu=cpu,
            decode_cpu=cpu,  # symmetric to first order
        )

    def expansion_factor(self, message: Message) -> float:
        """SOAP bytes / native JMS bytes."""
        return self.encode(message).xml_bytes / max(1, message.wire_size())
