"""The Web Services publishing proxy (paper §III.D / GRIDCC [3]).

Instruments that only speak SOAP POST their readings to the proxy over
HTTP; the proxy decodes the envelope (paying the XML + float-conversion
CPU) and republishes natively into the broker.  Comparing this path to
direct JMS publishing quantifies exactly what the paper chose to avoid.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.jms.destination import Topic
from repro.transport.http import HttpClient, HttpRequest, HttpServer
from repro.webservices.codec import SoapCodec

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.jms.connection import Connection
    from repro.sim.kernel import Simulator


class WsPublishProxy:
    """SOAP/HTTP front-end on one node, republishing into a JMS connection."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        transport: Any,
        port: int,
        jms_connection: "Connection",
        topic: Topic,
    ):
        self.sim = sim
        self.node = node
        self.topic = topic
        self.codec = SoapCodec()
        self._session = jms_connection.create_session()
        self._producer = self._session.create_publisher(topic)
        self.published = 0
        self._server = HttpServer(
            sim, transport, node, port, dispatcher=self._dispatch
        )

    def _dispatch(self, request: HttpRequest, respond: Any) -> None:
        self.sim.process(self._serve(request, respond), name="ws.proxy")

    def _serve(self, request: HttpRequest, respond: Any) -> Generator[Any, Any, None]:
        message = request.body["message"]
        encoding = request.body["encoding"]
        # Decode the SOAP envelope: XML parse + float/ASCII conversion.
        yield from self.node.execute(encoding.decode_cpu)
        yield from self._producer.publish(message)
        self.published += 1
        respond(200, {"ok": True}, 160)


class WsPublisherClient:
    """A SOAP-only instrument: encodes each reading and POSTs it."""

    def __init__(
        self,
        sim: "Simulator",
        transport: Any,
        node: "Node",
        proxy_host: str,
        port: int,
    ):
        self.sim = sim
        self.node = node
        self.codec = SoapCodec()
        self.http = HttpClient(sim, transport, node, proxy_host, port)

    def publish(self, message: Any) -> Generator[Any, Any, float]:
        """Encode + POST one message; returns the round-trip latency."""
        encoding = self.codec.encode(message)
        # Client-side serialisation cost.
        yield from self.node.execute(encoding.encode_cpu)
        started = self.sim.now
        response = yield from self.http.request(
            "/ws/publish",
            {"message": message, "encoding": encoding},
            encoding.xml_bytes,
        )
        if response.status != 200:
            raise RuntimeError(f"proxy error: {response.body}")
        return self.sim.now - started
