"""Discrete-event simulation kernel.

A small, deterministic, SimPy-flavoured kernel: coroutine processes drive
simulated time through an event heap.  Everything in :mod:`repro` that has a
notion of time — network links, broker threads, JVM garbage collection,
publishing generators — is a :class:`~repro.sim.process.Process` running on a
single :class:`~repro.sim.kernel.Simulator`.

The kernel is intentionally self-contained (no third-party dependency) so that
the middleware models above it are portable and the whole simulation is
bit-reproducible from a seed.
"""

from repro.sim.cohort import CohortProcess
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.resources import Container, PriorityStore, Resource, Store
from repro.sim.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "CohortProcess",
    "Container",
    "Event",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Resource",
    "RngStreams",
    "Simulator",
    "Store",
    "Timeout",
]
