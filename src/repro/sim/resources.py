"""Shared resources: stores, semaphores and level containers.

These model the queueing structures middleware is made of: socket buffers,
broker dispatch queues, servlet thread pools.  All waiting is FIFO, which
keeps latency behaviour deterministic and easy to reason about.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class StoreFull(Exception):
    """Raised by :meth:`Store.put_nowait` when a bounded store is full."""


class Store:
    """FIFO item queue with optional capacity.

    ``put`` blocks while the store is full; ``get`` blocks while it is empty.
    ``put_nowait`` either enqueues or raises :class:`StoreFull` — that is the
    drop point for lossy components (UDP sockets, overloaded brokers).
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("Store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def snapshot(self) -> dict[str, float]:
        """Read-only occupancy probe (telemetry samplers; never mutates)."""
        return {
            "depth": float(len(self.items)),
            "getters_waiting": float(len(self._getters)),
            "putters_waiting": float(len(self._putters)),
        }

    def put(self, item: Any) -> Event:
        """Event that fires once ``item`` has been accepted."""
        ev = Event(self.sim)
        if len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
            self._wake_getters()
        else:
            self._putters.append((ev, item))
        return ev

    def put_nowait(self, item: Any) -> None:
        """Enqueue immediately or raise :class:`StoreFull`."""
        if len(self.items) >= self.capacity:
            raise StoreFull(f"store at capacity {self.capacity}")
        self.items.append(item)
        self._wake_getters()

    def get(self) -> Event:
        """Event that fires with the next item."""
        ev = Event(self.sim)
        if self.items:
            ev.succeed(self.items.popleft())
            self._admit_putters()
        else:
            self._getters.append(ev)
        return ev

    def get_nowait(self) -> Any:
        """Dequeue immediately or raise ``IndexError``."""
        item = self.items.popleft()
        self._admit_putters()
        return item

    def cancel_get(self, event: Event) -> None:
        """Withdraw a pending ``get`` (e.g. its waiter timed out).

        No-op when the event already received an item or was never queued.
        """
        try:
            self._getters.remove(event)
        except ValueError:
            pass

    def _wake_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(self.items.popleft())

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter, item = self._putters.popleft()
            self.items.append(item)
            putter.succeed()
        self._wake_getters()


class PriorityStore(Store):
    """Store delivering the smallest item first (heap order).

    Items must be orderable; use ``(priority, seq, payload)`` tuples.  JMS
    message priority maps onto this.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")):
        super().__init__(sim, capacity)
        self.items: list[Any] = []  # type: ignore[assignment]

    def put(self, item: Any) -> Event:
        ev = Event(self.sim)
        if len(self.items) < self.capacity:
            heapq.heappush(self.items, item)
            self._wake_getters()
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def put_nowait(self, item: Any) -> None:
        if len(self.items) >= self.capacity:
            raise StoreFull(f"store at capacity {self.capacity}")
        heapq.heappush(self.items, item)
        self._wake_getters()

    def get(self) -> Event:
        ev = Event(self.sim)
        if self.items:
            ev.succeed(heapq.heappop(self.items))
            self._admit_putters()
        else:
            self._getters.append(ev)
        return ev

    def get_nowait(self) -> Any:
        item = heapq.heappop(self.items)
        self._admit_putters()
        return item

    def _wake_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(heapq.heappop(self.items))

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter, item = self._putters.popleft()
            heapq.heappush(self.items, item)
            putter.succeed()
        self._wake_getters()


class Resource:
    """Counting semaphore with FIFO waiters (e.g. a thread pool).

    Usage::

        yield pool.acquire()
        try:
            ...
        finally:
            pool.release()
    """

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise ValueError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def snapshot(self) -> dict[str, float]:
        """Read-only utilisation probe (telemetry samplers; never mutates)."""
        return {
            "in_use": float(self.in_use),
            "capacity": float(self.capacity),
            "waiters": float(len(self._waiters)),
        }

    def acquire(self) -> Event:
        ev = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns whether a unit was taken."""
        if self.in_use < self.capacity:
            self.in_use += 1
            return True
        return False

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError("release() without matching acquire()")
        if self._waiters:
            # Hand the unit directly to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1


class Container:
    """A homogeneous quantity (bytes of heap, joules, …) with blocking get.

    ``put`` never blocks (capacity checks raise instead: running past a hard
    limit is a *fault* in the systems we model, not a wait).
    """

    def __init__(
        self, sim: "Simulator", capacity: float = float("inf"), init: float = 0.0
    ):
        if init < 0 or init > capacity:
            raise ValueError("init must satisfy 0 <= init <= capacity")
        self.sim = sim
        self.capacity = capacity
        self.level = init
        self._getters: deque[tuple[Event, float]] = deque()

    def snapshot(self) -> dict[str, float]:
        """Read-only level probe (telemetry samplers; never mutates)."""
        return {"level": self.level, "getters_waiting": float(len(self._getters))}

    def put(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        if self.level + amount > self.capacity:
            raise OverflowError(
                f"container overflow: {self.level} + {amount} > {self.capacity}"
            )
        self.level += amount
        self._wake()

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.sim)
        if not self._getters and self.level >= amount:
            self.level -= amount
            ev.succeed()
        else:
            self._getters.append((ev, amount))
        return ev

    def try_get(self, amount: float) -> bool:
        if not self._getters and self.level >= amount:
            self.level -= amount
            return True
        return False

    def _wake(self) -> None:
        while self._getters and self.level >= self._getters[0][1]:
            ev, amount = self._getters.popleft()
            self.level -= amount
            ev.succeed()
