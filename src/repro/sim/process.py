"""Coroutine processes.

A :class:`Process` wraps a Python generator that yields :class:`Event`
instances.  The process suspends on each yielded event and resumes (with the
event's value, or with its exception raised) when the event is processed.
A process is itself an event, succeeding with the generator's return value,
so processes can wait on each other by yielding the :class:`Process`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Process(Event):
    """A running coroutine inside the simulation."""

    __slots__ = ("_generator", "_send", "_throw", "_target", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        # Bound methods cached once: the resume loop calls one of them per
        # context switch, and the attribute chain is measurable at scale.
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        #: Event this process is currently waiting on (None when runnable).
        self._target: Optional[Event] = None
        # Kick off at the current time via an immediately-scheduled event.
        init = Event(sim)
        init.callbacks = [self._resume]
        init.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is about to be resumed is allowed (the interrupt wins).
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        if self.sim.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        # Detach from whatever the process was waiting on.
        target, self._target = self._target, None
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        fault = Event(self.sim)
        fault.callbacks = [self._resume]
        fault.fail(Interrupt(cause))
        fault.defuse()

    # -- kernel resume path --------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._target = None
        sim = self.sim
        send = self._send
        prev, sim._active_process = sim._active_process, self
        try:
            while True:
                try:
                    if event._ok:
                        yielded = send(event._value)
                    else:
                        # Mark handled: the exception reaches the generator.
                        event.defuse()
                        yielded = self._throw(event._value)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    self.fail(exc)
                    return

                if not isinstance(yielded, Event):
                    err = RuntimeError(
                        f"process {self.name!r} yielded non-event {yielded!r}"
                    )
                    self.fail(err)
                    return
                if yielded.sim is not sim:
                    self.fail(
                        RuntimeError(
                            f"process {self.name!r} yielded event from another simulator"
                        )
                    )
                    return
                if yielded._processed:
                    # Already done: loop immediately with its outcome.
                    event = yielded
                    continue
                self._target = yielded
                # Inlined Event.add_callback (hot: one call per suspension).
                callbacks = yielded.callbacks
                if callbacks is None:
                    yielded.callbacks = [self._resume]
                else:
                    callbacks.append(self._resume)
                return
        finally:
            sim._active_process = prev
