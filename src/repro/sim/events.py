"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence at a point in simulated time.
Processes wait on events by ``yield``-ing them; the kernel resumes the process
when the event is *processed* (its callbacks run).

Lifecycle::

    pending  --succeed()/fail()-->  triggered  --kernel pop-->  processed

Composite conditions (:class:`AnyOf` / :class:`AllOf`) build fan-in waits from
child events, mirroring the small set of combinators middleware code actually
needs (wait for ack *or* timeout; wait for all fragments).

Hot-path note: ``callbacks`` is ``None`` both *before* any waiter registers
(lazy — a :class:`Timeout` nobody waits on never allocates the list) and
*after* the kernel processed the event; ``_processed`` distinguishes the two.
Use :meth:`Event.add_callback` rather than mutating ``callbacks`` directly —
it handles the lazy state and refuses processed events.  A bare
``Event(sim)`` still starts with an empty list so existing
``ev.callbacks.append(...)`` call sites keep working.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.kernel import Simulator

#: Sentinel for "event has no value yet".
_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process by :meth:`repro.sim.process.Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (e.g. a JVM OutOfMemory fault object).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Interrupt({self.cause!r})"


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        Owning simulator.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables invoked (with this event) when the event is processed.
        #: ``None`` once processed — or, on lazy subclasses, before the first
        #: :meth:`add_callback`.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._processed: bool = False
        self._defused: bool = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the kernel queue."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception when it failed)."""
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._value

    # -- callbacks ---------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when this event is processed.

        Allocates the callback list on first use (the common yield-timeout
        case never needs one when nothing waits).
        """
        callbacks = self.callbacks
        if callbacks is None:
            if self._processed:
                raise RuntimeError(f"{self!r} already processed")
            self.callbacks = [fn]
        else:
            callbacks.append(fn)

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def defuse(self) -> "Event":
        """Mark a failed event as handled so the kernel does not re-raise it."""
        self._defused = True
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed"
            if self._processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"

    # -- kernel hook -------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks.  Called exactly once by the kernel.

        The kernel's ``run`` loop inlines this body; keep the two in sync.
        """
        self._processed = True
        callbacks = self.callbacks
        self.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(self)


class Timeout(Event):
    """An event that fires ``delay`` units after creation.

    The workhorse of every timed behaviour in the models: link serialisation
    time, CPU service time, publish intervals, poll intervals.  It is born
    triggered, so the constructor writes its slots directly (no ``_PENDING``
    churn) and leaves ``callbacks`` unallocated until a waiter registers.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative Timeout delay {delay!r}")
        self.sim = sim
        self.callbacks = None
        self._value = value
        self._ok = True
        self._processed = False
        self._defused = False
        self.delay = delay
        # Inlined sim._schedule (hot: one Timeout per timed behaviour);
        # delay was validated above.
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now + delay, seq, self))


class Condition(Event):
    """Wait for a boolean combination of child events.

    The condition's value is a dict mapping each *processed* child event to
    its value, so waiters can see which of the children fired.

    ``needed`` is the count of processed children that triggers the
    condition — the fan-in test is a single integer compare on the hot path
    rather than a predicate call.
    """

    __slots__ = ("_events", "_count", "_needed")

    def __init__(
        self,
        sim: "Simulator",
        needed: int,
        events: Iterable[Event],
    ):
        super().__init__(sim)
        self._events = tuple(events)
        self._count = 0
        self._needed = needed
        for event in self._events:
            if event.sim is not sim:
                raise ValueError("cannot mix events from different simulators")
        if self._needed <= 0:
            # Degenerate condition (e.g. AllOf over zero events).
            self.succeed(self._collect())
            return
        on_child = self._on_child
        for event in self._events:
            if event._processed:
                on_child(event)
                if self._value is not _PENDING:
                    return  # already triggered; don't register on the rest
            else:
                event.add_callback(on_child)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self._events if e._processed and e._ok}

    def _on_child(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._count >= self._needed:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Triggered as soon as any child event is processed."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        events = tuple(events)
        super().__init__(sim, 1 if events else 0, events)


class AllOf(Condition):
    """Triggered once every child event is processed."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        events = tuple(events)
        super().__init__(sim, len(events), events)
