"""One sim event per cohort-tick: the driver for batched arrival processes.

A :class:`CohortProcess` replaces N per-message processes with a single
self-rescheduling batch event.  Each tick calls ``on_tick(now)``, which
emits whatever batch of work falls due around ``now`` (vectorized, outside
the kernel) and returns the absolute time of the next tick — or ``None``
when the cohort is drained.  Scheduling goes through
:meth:`repro.sim.kernel.Simulator.batch`, so a million-publisher cohort
costs the heap one entry per tick instead of one per message.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class CohortProcess:
    """Drives ``on_tick`` at its self-chosen times, one heap entry per tick."""

    __slots__ = ("sim", "on_tick", "ticks", "done")

    def __init__(
        self,
        sim: "Simulator",
        on_tick: Callable[[float], Optional[float]],
        at: float = 0.0,
    ):
        self.sim = sim
        self.on_tick = on_tick
        self.ticks = 0
        self.done = False
        sim.batch(max(0.0, at - sim.now), self._tick)

    def _tick(self, _event: object) -> None:
        now = self.sim.now
        self.ticks += 1
        nxt = self.on_tick(now)
        if nxt is None:
            self.done = True
            return
        if nxt < now:
            raise ValueError(f"cohort tick scheduled in the past ({nxt} < {now})")
        self.sim.batch(nxt - now, self._tick)
