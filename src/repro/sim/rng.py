"""Named random-number streams.

Every stochastic component draws from its own named stream derived from the
experiment's root seed.  Independence of streams means adding randomness to
one component (say, UDP loss) cannot perturb another (say, generator start
jitter), which keeps A/B comparisons between experiment variants honest.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """Factory and cache of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        # SeedSequence construction is ~1 ms; built lazily so simulations
        # that never draw randomness (kernel benchmarks, pure-timeout tests)
        # don't pay for it.
        self._root: np.random.SeedSequence | None = None
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use.

        The stream's seed is derived from ``(root seed, hash of name)`` so the
        mapping is stable across runs and across unrelated code changes.
        """
        gen = self._streams.get(name)
        if gen is None:
            root = self._root
            if root is None:
                root = self._root = np.random.SeedSequence(self.seed)
            child = np.random.SeedSequence(
                entropy=root.entropy,
                spawn_key=(_stable_hash(name),),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw from stream ``name``."""
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean."""
        return float(self.stream(name).exponential(mean))

    def random(self, name: str) -> float:
        """One U[0,1) draw."""
        return float(self.stream(name).random())


def _stable_hash(name: str) -> int:
    """A process-independent 64-bit hash (``hash()`` is salted per process)."""
    h = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h
