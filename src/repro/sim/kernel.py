"""The simulation kernel: an event heap and a clock.

One :class:`Simulator` instance owns all simulated state for an experiment.
Time is a float in **seconds** of simulated time throughout :mod:`repro`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngStreams


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all randomness.  Every consumer of randomness draws from
        a named stream derived from this seed (see :class:`RngStreams`), which
        keeps runs bit-reproducible and streams independent of each other.

    Notes
    -----
    Events scheduled at the same time are processed in scheduling order
    (a monotone sequence number breaks ties), which makes the simulation
    fully deterministic without relying on heap stability.
    """

    def __init__(self, seed: int = 0):
        self.rng = RngStreams(seed)
        self._now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def pending_events(self) -> int:
        """Heap occupancy — a read-only probe for telemetry samplers."""
        return len(self._queue)

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the tie-breaking sequence counter)."""
        return self._seq

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Launch ``generator`` as a process; returns its :class:`Process`."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute time ``when`` (>= now)."""
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        ev = self.timeout(when - self._now)
        assert ev.callbacks is not None
        ev.callbacks.append(lambda _e: fn())
        return ev

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule event in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        try:
            self._now, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        event._process()
        if not event._ok and not event._defused:
            # A failure nobody handled: surface it rather than losing it.
            exc = event._value
            raise exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose predictably.
        """
        if until is None:
            while self._queue:
                self.step()
            return
        if until < self._now:
            raise ValueError(f"run(until={until}) is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= until:
            self.step()
        self._now = max(self._now, until)

    def run_process(self, generator: Generator[Event, Any, Any]) -> Any:
        """Convenience: run ``generator`` as a process to completion.

        Returns the process's return value.  Used heavily in tests.
        """
        proc = self.process(generator)
        while self._queue and not proc.processed:
            self.step()
        if not proc.processed:
            raise RuntimeError("process did not finish (deadlock or starvation)")
        if not proc.ok:
            raise proc.value
        return proc.value
