"""The simulation kernel: an event heap and a clock.

One :class:`Simulator` instance owns all simulated state for an experiment.
Time is a float in **seconds** of simulated time throughout :mod:`repro`.

The ``run``/``run_process`` loops inline the pop-and-process step (the body
of :meth:`Simulator.step` and :meth:`repro.sim.events.Event._process`) with
the heap, the pop function and the queue bound to locals: every paper-scale
experiment is bounded by this loop, and the per-event attribute lookups and
method-call frames were its largest cost.  Semantics — tie-break order,
failure surfacing, interrupt behaviour — are identical to the readable
:meth:`step` form, which remains the single-step API.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngStreams


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all randomness.  Every consumer of randomness draws from
        a named stream derived from this seed (see :class:`RngStreams`), which
        keeps runs bit-reproducible and streams independent of each other.

    Notes
    -----
    Events scheduled at the same time are processed in scheduling order
    (a monotone sequence number breaks ties), which makes the simulation
    fully deterministic without relying on heap stability.
    """

    __slots__ = ("rng", "_now", "_queue", "_seq", "_active_process")

    def __init__(self, seed: int = 0):
        self.rng = RngStreams(seed)
        self._now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def pending_events(self) -> int:
        """Heap occupancy — a read-only probe for telemetry samplers."""
        return len(self._queue)

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the tie-breaking sequence counter)."""
        return self._seq

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now.

        Inlines ``Timeout.__init__`` (kept in sync) to save a call frame —
        this factory is the single most-called constructor in a run.
        """
        if delay < 0:
            raise ValueError(f"negative Timeout delay {delay!r}")
        t = Timeout.__new__(Timeout)
        t.sim = self
        t.callbacks = None
        t._value = value
        t._ok = True
        t._processed = False
        t._defused = False
        t.delay = delay
        self._seq = seq = self._seq + 1
        heappush(self._queue, (self._now + delay, seq, t))
        return t

    def batch(self, delay: float, fn: Callable[[Event], Any]) -> Timeout:
        """Schedule ``fn(event)`` ``delay`` seconds from now as ONE heap entry.

        The batch-event fast path: where a per-message design pays one heap
        entry plus one process resume per delivery, a cohort tick pays one
        heap entry and one Python call for the whole batch — ``fn`` fans out
        N deliveries internally as array ops.  ``fn`` is installed directly
        as the event's only callback, so the run loop's inlined dispatch
        reaches it without ``add_callback`` or :class:`Process` machinery.
        """
        if delay < 0:
            raise ValueError(f"negative batch delay {delay!r}")
        t = Timeout.__new__(Timeout)
        t.sim = self
        t.callbacks = [fn]
        t._value = None
        t._ok = True
        t._processed = False
        t._defused = False
        t.delay = delay
        self._seq = seq = self._seq + 1
        heappush(self._queue, (self._now + delay, seq, t))
        return t

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Launch ``generator`` as a process; returns its :class:`Process`."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute time ``when`` (>= now)."""
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        ev = self.timeout(when - self._now)
        ev.add_callback(lambda _e: fn())
        return ev

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule event in the past (delay={delay})")
        self._seq = seq = self._seq + 1
        heappush(self._queue, (self._now + delay, seq, event))

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        try:
            self._now, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        event._process()
        if not event._ok and not event._defused:
            # A failure nobody handled: surface it rather than losing it.
            exc = event._value
            raise exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose predictably.
        """
        queue = self._queue
        pop = heappop
        if until is None:
            now = self._now
            while queue:
                # Inlined step()/Event._process(): see module docstring.
                # ``self._now`` is synced lazily — only before user code
                # (callbacks, exceptions) can observe it; ``now`` is
                # authoritative inside the loop.
                now, _, event = pop(queue)
                callbacks = event.callbacks
                event._processed = True
                if callbacks is not None:
                    self._now = now
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                elif not event._ok and not event._defused:
                    self._now = now
                    raise event._value
            self._now = now
            return
        if until < self._now:
            raise ValueError(f"run(until={until}) is in the past (now={self._now})")
        now = self._now
        while queue and queue[0][0] <= until:
            now, _, event = pop(queue)
            callbacks = event.callbacks
            event._processed = True
            if callbacks is not None:
                self._now = now
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            elif not event._ok and not event._defused:
                self._now = now
                raise event._value
        self._now = max(now, until)

    def run_process(self, generator: Generator[Event, Any, Any]) -> Any:
        """Convenience: run ``generator`` as a process to completion.

        Returns the process's return value.  Used heavily in tests.
        """
        proc = self.process(generator)
        queue = self._queue
        pop = heappop
        while queue and not proc._processed:
            self._now, _, event = pop(queue)
            callbacks = event.callbacks
            event._processed = True
            if callbacks is not None:
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
            if not event._ok and not event._defused:
                raise event._value
        if not proc._processed:
            raise RuntimeError("process did not finish (deadlock or starvation)")
        if not proc.ok:
            raise proc.value
        return proc.value
