"""R-GMA exception types."""


class RGMAException(Exception):
    """Permanent R-GMA failure (bad SQL, unknown table, closed resource)."""


class RGMATemporaryException(RGMAException):
    """Transient failure the caller may retry (server overloaded, OOM)."""
