"""The R-GMA SQL subset: CREATE TABLE, INSERT, SELECT ... WHERE.

"Data are published using SQL INSERT statement and queried using SQL SELECT
statement" (paper §II.A).  WHERE predicates reuse the SQL-92 conditional
engine from :mod:`repro.jms.selector` (the grammar is the same subset),
evaluated against a row view — this is R-GMA's content-based filtering.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.jms.selector import Selector
from repro.rgma.errors import RGMAException

# --------------------------------------------------------------------- lexer

_SQL_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct><>|<=|>=|[(),*=\-<>+/])
    """,
    re.VERBOSE,
)


@dataclass
class _Tok:
    kind: str  # 'num' | 'str' | 'ident' | punct char
    value: Any
    pos: int


def _lex_sql(text: str) -> list[_Tok]:
    out: list[_Tok] = []
    pos = 0
    while pos < len(text):
        m = _SQL_TOKEN_RE.match(text, pos)
        if m is None:
            raise RGMAException(f"bad SQL at offset {pos}: {text[pos:pos+10]!r}")
        start = pos
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        raw = m.group()
        if kind == "float":
            out.append(_Tok("num", float(raw), start))
        elif kind == "int":
            out.append(_Tok("num", int(raw), start))
        elif kind == "string":
            out.append(_Tok("str", raw[1:-1].replace("''", "'"), start))
        elif kind == "ident":
            out.append(_Tok("ident", raw, start))
        else:
            out.append(_Tok(raw, raw, start))
    out.append(_Tok("eof", None, len(text)))
    return out


# ----------------------------------------------------------------------- AST

@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: tuple[tuple[str, str], ...]  # (name, type) pairs
    primary_key: tuple[str, ...]


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]
    values: tuple[Any, ...]


@dataclass(frozen=True)
class Select:
    table: str
    columns: tuple[str, ...]  # empty = '*'
    where: Optional[Selector]
    where_text: Optional[str]


class RowView:
    """Adapter letting the selector engine evaluate a row dict."""

    __slots__ = ("row",)

    def __init__(self, row: dict[str, Any]):
        self.row = row

    def selector_value(self, identifier: str) -> Any:
        return self.row.get(identifier)


# -------------------------------------------------------------------- parser

_COLUMN_TYPES = {"INTEGER", "INT", "REAL", "DOUBLE", "VARCHAR", "CHAR", "TIMESTAMP"}


class _SqlParser:
    def __init__(self, text: str):
        self.text = text.strip().rstrip(";")
        self.toks = _lex_sql(self.text)
        self.pos = 0

    def peek(self) -> _Tok:
        return self.toks[self.pos]

    def next(self) -> _Tok:
        tok = self.toks[self.pos]
        self.pos += 1
        return tok

    def expect_punct(self, ch: str) -> None:
        tok = self.next()
        if tok.kind != ch:
            raise RGMAException(f"expected {ch!r}, found {tok.value!r}")

    def expect_ident(self, keyword: Optional[str] = None) -> str:
        tok = self.next()
        if tok.kind != "ident":
            raise RGMAException(f"expected identifier, found {tok.value!r}")
        if keyword is not None and tok.value.upper() != keyword:
            raise RGMAException(f"expected {keyword}, found {tok.value!r}")
        return tok.value

    def at_keyword(self, keyword: str) -> bool:
        tok = self.peek()
        return tok.kind == "ident" and tok.value.upper() == keyword

    # -- statements ---------------------------------------------------------
    def parse(self) -> CreateTable | Insert | Select:
        if self.at_keyword("CREATE"):
            return self.parse_create()
        if self.at_keyword("INSERT"):
            return self.parse_insert()
        if self.at_keyword("SELECT"):
            return self.parse_select()
        raise RGMAException(f"unsupported statement: {self.text[:30]!r}")

    def parse_create(self) -> CreateTable:
        self.expect_ident("CREATE")
        self.expect_ident("TABLE")
        table = self.expect_ident()
        self.expect_punct("(")
        columns: list[tuple[str, str]] = []
        primary_key: list[str] = []
        while True:
            if self.at_keyword("PRIMARY"):
                self.expect_ident("PRIMARY")
                self.expect_ident("KEY")
                self.expect_punct("(")
                primary_key.append(self.expect_ident())
                while self.peek().kind == ",":
                    self.next()
                    primary_key.append(self.expect_ident())
                self.expect_punct(")")
            else:
                name = self.expect_ident()
                col_type = self.expect_ident().upper()
                if col_type not in _COLUMN_TYPES:
                    raise RGMAException(f"unknown column type {col_type!r}")
                if col_type in ("VARCHAR", "CHAR") and self.peek().kind == "(":
                    self.next()
                    width = self.next()
                    if width.kind != "num":
                        raise RGMAException("expected width in type")
                    self.expect_punct(")")
                    col_type = f"{col_type}({width.value})"
                if self.at_keyword("PRIMARY"):
                    self.expect_ident("PRIMARY")
                    self.expect_ident("KEY")
                    primary_key.append(name)
                columns.append((name, col_type))
            tok = self.next()
            if tok.kind == ")":
                break
            if tok.kind != ",":
                raise RGMAException(f"expected , or ) found {tok.value!r}")
        if self.peek().kind != "eof":
            raise RGMAException("trailing input after CREATE TABLE")
        if not columns:
            raise RGMAException("CREATE TABLE needs at least one column")
        return CreateTable(table, tuple(columns), tuple(primary_key))

    def parse_insert(self) -> Insert:
        self.expect_ident("INSERT")
        self.expect_ident("INTO")
        table = self.expect_ident()
        columns: list[str] = []
        if self.peek().kind == "(":
            self.next()
            columns.append(self.expect_ident())
            while self.peek().kind == ",":
                self.next()
                columns.append(self.expect_ident())
            self.expect_punct(")")
        self.expect_ident("VALUES")
        self.expect_punct("(")
        values: list[Any] = [self.parse_literal()]
        while self.peek().kind == ",":
            self.next()
            values.append(self.parse_literal())
        self.expect_punct(")")
        if self.peek().kind != "eof":
            raise RGMAException("trailing input after INSERT")
        if columns and len(columns) != len(values):
            raise RGMAException(
                f"{len(columns)} columns but {len(values)} values in INSERT"
            )
        return Insert(table, tuple(columns), tuple(values))

    def parse_literal(self) -> Any:
        tok = self.next()
        if tok.kind in ("num", "str"):
            return tok.value
        if tok.kind == "ident" and tok.value.upper() == "NULL":
            return None
        if tok.kind == "-":
            num = self.next()
            if num.kind != "num":
                raise RGMAException("expected number after unary minus")
            return -num.value
        raise RGMAException(f"expected literal, found {tok.value!r}")

    def parse_select(self) -> Select:
        self.expect_ident("SELECT")
        columns: list[str] = []
        if self.peek().kind == "*":
            self.next()
        else:
            columns.append(self.expect_ident())
            while self.peek().kind == ",":
                self.next()
                columns.append(self.expect_ident())
        self.expect_ident("FROM")
        table = self.expect_ident()
        where = None
        where_text = None
        if self.at_keyword("WHERE"):
            where_tok = self.next()
            # Everything after WHERE is a selector-language predicate.
            where_text = self.text[where_tok.pos + len("WHERE"):].strip()
            if not where_text:
                raise RGMAException("empty WHERE clause")
            try:
                where = Selector(where_text)
            except Exception as exc:
                raise RGMAException(f"bad WHERE clause: {exc}") from exc
            return Select(table, tuple(columns), where, where_text)
        if self.peek().kind != "eof":
            raise RGMAException("trailing input after SELECT")
        return Select(table, tuple(columns), None, None)


def parse_sql(text: str) -> CreateTable | Insert | Select:
    """Parse one SQL statement of the supported subset."""
    return _SqlParser(text).parse()


def render_insert(table: str, row: dict[str, Any]) -> str:
    """Build the INSERT statement for a row (what generator clients send).

    The paper's monitoring data "were wrapped in an SQL statement" (§III.F);
    rendering and parsing the real text keeps the byte counts honest.
    """
    cols = ", ".join(row)
    vals = ", ".join(_render_literal(v) for v in row.values())
    return f"INSERT INTO {table} ({cols}) VALUES ({vals})"


def _render_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, float):
        return repr(value)
    return str(value)
