"""Registry + mediator, and the R-GMA calibration constants.

"Producers and consumers register their addresses in the registry.  Data
must be disseminated via the producer and consumer to reach destination"
(paper §II.A).  The registry records producer and consumer resources; the
*mediator* periodically matches continuous queries to producers and attaches
streams.  The mediation delay is the mechanism behind the paper's warm-up
finding: "when creating a large number of Primary Producers, each thread
must wait for a short time (5 ~ 10 seconds) before publishing data otherwise
data will probably be lost.  This is probably because it took some time for
the producer to look for the consumer" (§III.F).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import count
from typing import TYPE_CHECKING, Any, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.rgma.consumer import ConsumerResource
    from repro.rgma.producer import ProducerResourceBase
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class RGMAConfig:
    """Calibration constants for the R-GMA model.

    Chosen so headline figures land in the paper's ranges (EXPERIMENTS.md):
    RTT of one to two seconds growing with connection count (Fig 11), >99 %
    of messages within ~4000 ms (§III.F.1), an out-of-memory wall below 800
    producers on one server, ~35 s delays through the Secondary Producer
    (Fig 10), and ~0.2 % loss when producers publish without warm-up.

    Era-plausibility: ~12 ms of consumer-side CPU per tuple ≈ 80 tuples/s
    per server — consistent with published R-GMA gLite throughput on
    sub-GHz hardware, where each tuple crosses servlet, SOAP and SQL layers.
    """

    # -- per-operation CPU (seconds on the reference PIII node) ------------
    #: PP servlet: parse INSERT, validate, store.
    insert_cpu: float = 0.004
    #: Consumer resource: per-tuple mediation/SQL/servlet processing.
    consumer_tuple_cpu: float = 0.0085
    #: Producer-side per-tuple cost when assembling a stream batch.
    stream_tuple_cpu: float = 0.001
    #: One-shot query handling (latest/history) fixed cost...
    query_cpu: float = 0.008
    #: ...plus per returned tuple.
    query_tuple_cpu: float = 0.0008
    #: Subscriber poll request fixed cost.
    poll_cpu: float = 0.002
    #: Per tuple returned to a poll.
    poll_tuple_cpu: float = 0.001
    #: Resource registration (producer or consumer) on the registry node.
    registration_cpu: float = 0.015
    #: Mediator scan cost per (consumer, producer) candidate pair.
    mediation_pair_cpu: float = 40e-6

    # -- periods ------------------------------------------------------------
    #: Producer streams accumulated tuples to consumers on this period.
    stream_period: float = 1.0
    #: Mediator matching scan period (drives the warm-up requirement).
    mediation_period: float = 2.0
    #: Tuples inserted within this window before attach still stream
    #: (continuous-query start overlap).
    history_overlap: float = 1.4
    #: Subscriber poll interval (paper: 100 ms, §III.F).
    poll_interval: float = 0.1
    #: The deliberate Secondary Producer republish delay (§III.F.3).
    secondary_producer_delay: float = 30.0

    # -- retention (paper §III.F) -------------------------------------------
    latest_retention: float = 30.0
    history_retention: float = 60.0

    # -- servlet container / JVM --------------------------------------------
    heap_bytes: float = 1024 * 1024 * 1024
    thread_stack_bytes: float = 256 * 1024
    native_budget_bytes: float = 900 * 1024 * 1024
    #: Tomcat connector limit (paper: "increased to 1000").
    max_connections: int = 1000
    #: Concurrent servlet worker threads actually processing requests.
    worker_threads: int = 24
    #: Heap per keep-alive client connection (Tomcat buffers + session).
    per_connection_heap: float = 220 * 1024
    #: Server-side heap per Primary Producer resource.
    per_producer_heap: float = 1.1 * 1024 * 1024
    #: Server-side heap per Consumer resource.
    per_consumer_heap: float = 1.6 * 1024 * 1024

    # -- wire ----------------------------------------------------------------
    #: HTTP/SOAP envelope around an INSERT.
    insert_envelope_bytes: int = 260
    #: Envelope per streamed batch and per tuple inside it.
    stream_batch_overhead_bytes: int = 120
    stream_tuple_overhead_bytes: int = 32

    def with_(self, **changes) -> "RGMAConfig":
        return replace(self, **changes)


_entry_ids = count(1)


@dataclass
class ProducerEntry:
    producer_id: str
    table: str
    resource: "ProducerResourceBase"
    is_secondary: bool
    register_time: float
    visible: bool = False  # becomes True at the first mediation scan


@dataclass
class ConsumerEntry:
    consumer_id: str
    table: str
    resource: "ConsumerResource"
    producer_type: Optional[str]  # None | "primary" | "secondary"
    register_time: float
    visible: bool = False


class Registry:
    """The registry service plus its periodic mediator.

    Runs on a designated node; registration and mediation charge that
    node's CPU.  Matching is by table name and (optionally) producer type;
    WHERE-predicate evaluation happens at the producer when streaming
    (content-based filtering).
    """

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        schema: Any = None,
        config: Optional[RGMAConfig] = None,
    ):
        self.sim = sim
        self.node = node
        self.schema = schema
        self.config = config or RGMAConfig()
        self.producers: dict[str, ProducerEntry] = {}
        self.consumers: dict[str, ConsumerEntry] = {}
        self.mediation_scans = 0
        self.attachments = 0
        self._running = True
        sim.process(self._mediator_loop(), name="rgma.mediator")

    # -------------------------------------------------------- registration
    def register_producer(
        self, resource: "ProducerResourceBase", is_secondary: bool = False
    ) -> Generator[Any, Any, str]:
        yield from self.node.execute(self.config.registration_cpu)
        producer_id = f"{'sp' if is_secondary else 'pp'}-{next(_entry_ids)}"
        self.producers[producer_id] = ProducerEntry(
            producer_id=producer_id,
            table=resource.table_name,
            resource=resource,
            is_secondary=is_secondary,
            register_time=self.sim.now,
        )
        return producer_id

    def register_consumer(
        self,
        resource: "ConsumerResource",
        producer_type: Optional[str] = None,
    ) -> Generator[Any, Any, str]:
        yield from self.node.execute(self.config.registration_cpu)
        consumer_id = f"cons-{next(_entry_ids)}"
        self.consumers[consumer_id] = ConsumerEntry(
            consumer_id=consumer_id,
            table=resource.table_name,
            resource=resource,
            producer_type=producer_type,
            register_time=self.sim.now,
        )
        return consumer_id

    def deregister_producer(self, producer_id: str) -> None:
        self.producers.pop(producer_id, None)

    def deregister_consumer(self, consumer_id: str) -> None:
        entry = self.consumers.pop(consumer_id, None)
        if entry is not None:
            for p in self.producers.values():
                p.resource.detach_consumer(entry.resource)

    # ------------------------------------------------------------ mediator
    def _mediator_loop(self) -> Generator[Any, Any, None]:
        cfg = self.config
        while self._running:
            yield self.sim.timeout(cfg.mediation_period)
            self.mediation_scans += 1
            pairs = len(self.producers) * max(1, len(self.consumers))
            yield from self.node.execute(cfg.mediation_pair_cpu * pairs)
            for consumer in self.consumers.values():
                for producer in self.producers.values():
                    if producer.table != consumer.table:
                        continue
                    if consumer.producer_type == "primary" and producer.is_secondary:
                        continue
                    if (
                        consumer.producer_type == "secondary"
                        and not producer.is_secondary
                    ):
                        continue
                    if producer.resource.attach_consumer(consumer.resource):
                        self.attachments += 1

    def stop(self) -> None:
        self._running = False
