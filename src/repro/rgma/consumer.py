"""Consumer resource and the polling subscriber client.

"Consumer used continuous query to receive data from Primary Producers.
Another Java program (subscriber) used Consumer API to receive data from the
Consumer.  The subscriber could not be automatically notified by the
Consumer and it queried the Consumer at the interval of 100 milliseconds"
(paper §III.F).

A :class:`ConsumerResource` lives in a servlet container: the mediator
attaches producers to it, streamed tuples are processed (the dominant CPU
cost in R-GMA's pipeline — the paper's Process Time) and parked in an
outbox; a :class:`ConsumerClient` polls the outbox over HTTP every 100 ms.
One-shot *latest* and *history* queries are also supported (paper §II.A:
"latest and historical query").
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.rgma.errors import RGMAException
from repro.rgma.registry import Registry
from repro.rgma.sql import Select, parse_sql
from repro.rgma.storage import Tuple
from repro.transport.http import HttpClient

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.rgma.servlet import ServletContainer
    from repro.sim.kernel import Simulator


class ConsumerResource:
    """Server-side consumer: target of producer streams."""

    def __init__(
        self,
        container: "ServletContainer",
        registry: Registry,
        select: Select,
        resource_id: str,
        on_tuple: Optional[Callable[[Tuple], None]] = None,
    ):
        self.container = container
        self.registry = registry
        self.sim = container.sim
        self.config = container.config
        self.select = select
        self.table_name = select.table
        self.predicate = select.where
        self.resource_id = resource_id
        self.on_tuple = on_tuple
        self.outbox: deque[Tuple] = deque()
        self.tuples_received = 0
        self.consumer_id: Optional[str] = None  # registry id
        self.closed = False

    def _on_batch(self, batch: list[Tuple]) -> Generator[Any, Any, None]:
        """Process one streamed batch: the R-GMA 'Process Time' hot spot."""
        if self.closed:
            return
        for t in batch:
            yield from self.container.node.execute(self.config.consumer_tuple_cpu)
            t.meta["t_consumer_ready"] = self.sim.now
            self.tuples_received += 1
            if self.on_tuple is not None:
                self.on_tuple(t)
            else:
                self.outbox.append(t)

    def drain(self) -> list[Tuple]:
        out = list(self.outbox)
        self.outbox.clear()
        return out

    def close(self) -> None:
        self.closed = True
        if self.consumer_id is not None:
            self.registry.deregister_consumer(self.consumer_id)


class ConsumerClient:
    """Client-side consumer API: create a continuous query, then poll.

    ``poll_loop`` reproduces the paper's subscriber: a 100 ms polling
    process that hands each received tuple to a callback.
    """

    def __init__(
        self,
        sim: "Simulator",
        transport: Any,
        node: "Node",
        server_host: str,
        port: int,
    ):
        self.sim = sim
        self.node = node
        self.http = HttpClient(sim, transport, node, server_host, port)
        self.resource_id: Optional[str] = None
        self.tuples_received = 0
        self._polling = False

    def create(
        self, select_sql: str, producer_type: Optional[str] = None
    ) -> Generator[Any, Any, str]:
        """Start a continuous query; returns the resource id."""
        stmt = parse_sql(select_sql)
        if not isinstance(stmt, Select):
            raise RGMAException("consumer query must be a SELECT")
        response = yield from self.http.request(
            "/consumer/create",
            {"sql": select_sql, "producer_type": producer_type},
            len(select_sql) + 80,
        )
        if response.status != 200:
            raise RGMAException(f"consumer create failed: {response.body}")
        self.resource_id = response.body["resource_id"]
        return self.resource_id

    def poll_once(self) -> Generator[Any, Any, list[Tuple]]:
        """One poll round trip; returns (possibly empty) tuples."""
        if self.resource_id is None:
            raise RGMAException("poll before create()")
        t_poll_start = self.sim.now
        response = yield from self.http.request(
            "/consumer/pop", {"resource_id": self.resource_id}, 90
        )
        if response.status != 200:
            raise RGMAException(f"poll failed: {response.body}")
        tuples: list[Tuple] = response.body["tuples"]
        for t in tuples:
            t.meta["t_poll_start"] = t_poll_start
            t.meta["t_received"] = self.sim.now
        self.tuples_received += len(tuples)
        return tuples

    def poll_loop(
        self,
        on_tuple: Callable[[Tuple], None],
        interval: Optional[float] = None,
    ) -> Generator[Any, Any, None]:
        """The paper's subscriber loop (100 ms poll interval)."""
        if interval is None:
            interval = 0.1
        self._polling = True
        while self._polling:
            tuples = yield from self.poll_once()
            for t in tuples:
                on_tuple(t)
            yield self.sim.timeout(interval)

    def stop(self) -> None:
        self._polling = False

    # ----------------------------------------------------- one-shot queries
    def query_latest(self, select_sql: str) -> Generator[Any, Any, list[Tuple]]:
        """Latest-tuple-per-key snapshot across matching producers."""
        return_value = yield from self._one_shot("/consumer/latest", select_sql)
        return return_value

    def query_history(self, select_sql: str) -> Generator[Any, Any, list[Tuple]]:
        """All retained history across matching producers."""
        return_value = yield from self._one_shot("/consumer/history", select_sql)
        return return_value

    def _one_shot(self, path: str, select_sql: str) -> Generator[Any, Any, list[Tuple]]:
        stmt = parse_sql(select_sql)
        if not isinstance(stmt, Select):
            raise RGMAException("query must be a SELECT")
        response = yield from self.http.request(
            path, {"sql": select_sql}, len(select_sql) + 80
        )
        if response.status != 200:
            raise RGMAException(f"query failed: {response.body}")
        return response.body["tuples"]

    def close(self) -> Generator[Any, Any, None]:
        self.stop()
        if self.resource_id is not None:
            yield from self.http.request(
                "/consumer/close", {"resource_id": self.resource_id}, 100
            )
            self.resource_id = None
        self.http.close()
