"""R-GMA site assembly: servlet wiring and deployments.

"R-GMA has a natural way to implement a distributed architecture.  The
R-GMA Producer, Consumer and Registry can be installed onto different
machines" (paper §III.F.1).  :class:`RGMASite` deploys the R-GMA web
application (producer + consumer servlets) into one container;
:class:`RGMADeployment` builds the paper's two configurations:

* **single server** — registry, producer servlet and consumer servlet all in
  one Tomcat on one node (the configuration that dies below 800 clients);
* **distributed** — two producer nodes and two consumer nodes, registry on
  the first producer node (the configuration that reaches 1000+ clients).
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.cluster.jvm import OutOfMemoryError
from repro.rgma.consumer import ConsumerClient, ConsumerResource
from repro.rgma.errors import RGMAException, RGMATemporaryException
from repro.rgma.producer import (
    PrimaryProducerClient,
    PrimaryProducerResource,
    SecondaryProducerResource,
)
from repro.rgma.registry import Registry, RGMAConfig
from repro.rgma.schema import Schema, grid_monitoring_table
from repro.rgma.servlet import ServletContainer
from repro.rgma.sql import Insert, RowView, Select, parse_sql
from repro.telemetry.context import current as _telemetry
from repro.transport.http import HttpRequest
from repro.transport.tcp import TcpTransport

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.hydra import HydraCluster
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator

_site_resource_seq = count(1)

HTTP_PORT = 8080
STREAM_PORT = 8090


class RGMASite:
    """One container running the R-GMA web application."""

    def __init__(self, container: ServletContainer, registry: Registry):
        self.container = container
        self.registry = registry
        self.sim = container.sim
        self.config = container.config
        self.producers: dict[str, PrimaryProducerResource] = {}
        self.secondary_producers: dict[str, SecondaryProducerResource] = {}
        self.consumers: dict[str, ConsumerResource] = {}
        container.deploy("/pp/create", self._pp_create)
        container.deploy("/pp/insert", self._pp_insert)
        container.deploy("/pp/close", self._pp_close)
        container.deploy("/sp/create", self._sp_create)
        container.deploy("/consumer/create", self._consumer_create)
        container.deploy("/consumer/pop", self._consumer_pop)
        container.deploy("/consumer/latest", self._consumer_latest)
        container.deploy("/consumer/history", self._consumer_history)
        container.deploy("/consumer/close", self._consumer_close)

    # ----------------------------------------------------- producer servlet
    def _pp_create(self, request: HttpRequest) -> Generator[Any, Any, tuple]:
        table = request.body["table"]
        if not self.registry.schema.exists(table):
            return 500, {"error": f"unknown table {table!r}"}, 120
        self.container.jvm.alloc(self.config.per_producer_heap, "PP resource")
        resource_id = f"ppr-{next(_site_resource_seq)}"
        resource = PrimaryProducerResource(
            self.container, self.registry, table, resource_id
        )
        resource.producer_id = yield from self.registry.register_producer(resource)
        self.producers[resource_id] = resource
        return 200, {"resource_id": resource_id}, 100

    def _pp_insert(self, request: HttpRequest) -> Generator[Any, Any, tuple]:
        resource = self.producers.get(request.body["resource_id"])
        if resource is None:
            return 500, {"error": "no such producer resource"}, 120
        yield from self.container.node.execute(self.config.insert_cpu)
        stmt = parse_sql(request.body["sql"])
        if not isinstance(stmt, Insert):
            return 500, {"error": "expected INSERT"}, 120
        table = self.registry.schema.table(stmt.table)
        columns = stmt.columns or table.column_names()
        if len(columns) != len(stmt.values):
            return 500, {"error": "column/value count mismatch"}, 120
        row = dict(zip(columns, stmt.values))
        meta = request.body.get("meta") or {}
        resource.insert_row(row, meta)
        return 200, {}, 40

    def _pp_close(self, request: HttpRequest) -> Generator[Any, Any, tuple]:
        resource = self.producers.pop(request.body["resource_id"], None)
        if resource is not None:
            resource.close()
            self.container.jvm.free(self.config.per_producer_heap)
        if False:  # pragma: no cover - generator shape
            yield
        return 200, {}, 40

    # -------------------------------------------- secondary producer servlet
    def _sp_create(self, request: HttpRequest) -> Generator[Any, Any, tuple]:
        table = request.body["table"]
        if not self.registry.schema.exists(table):
            return 500, {"error": f"unknown table {table!r}"}, 120
        self.container.jvm.alloc(
            self.config.per_producer_heap + self.config.per_consumer_heap,
            "SP resource",
        )
        resource_id = f"spr-{next(_site_resource_seq)}"
        sp = SecondaryProducerResource(
            self.container, self.registry, table, resource_id
        )
        # Internal consumer feeding the SP's republish path.
        ingest = ConsumerResource(
            self.container,
            self.registry,
            Select(table, (), None, None),
            f"{resource_id}.ingest",
            on_tuple=sp.ingest,
        )
        sp.producer_id = yield from self.registry.register_producer(
            sp, is_secondary=True
        )
        ingest.consumer_id = yield from self.registry.register_consumer(
            ingest, producer_type="primary"
        )
        self.secondary_producers[resource_id] = sp
        self.consumers[ingest.resource_id] = ingest
        return 200, {"resource_id": resource_id}, 100

    # ----------------------------------------------------- consumer servlet
    def _consumer_create(self, request: HttpRequest) -> Generator[Any, Any, tuple]:
        stmt = parse_sql(request.body["sql"])
        if not isinstance(stmt, Select):
            return 500, {"error": "expected SELECT"}, 120
        if not self.registry.schema.exists(stmt.table):
            return 500, {"error": f"unknown table {stmt.table!r}"}, 120
        self.container.jvm.alloc(self.config.per_consumer_heap, "consumer resource")
        resource_id = f"cr-{next(_site_resource_seq)}"
        resource = ConsumerResource(
            self.container, self.registry, stmt, resource_id
        )
        resource.consumer_id = yield from self.registry.register_consumer(
            resource, producer_type=request.body.get("producer_type")
        )
        self.consumers[resource_id] = resource
        return 200, {"resource_id": resource_id}, 100

    def _consumer_pop(self, request: HttpRequest) -> Generator[Any, Any, tuple]:
        resource = self.consumers.get(request.body["resource_id"])
        if resource is None:
            return 500, {"error": "no such consumer resource"}, 120
        tuples = resource.drain()
        tel = _telemetry()
        if tel is not None and tuples:
            component = f"cs.{self.container.node.name}"
            for t in tuples:
                record = t.meta.get("record")
                if record is not None:
                    tel.mark(record, "broker_out", self.sim.now, "rgma", component)
        yield from self.container.node.execute(
            self.config.poll_cpu + self.config.poll_tuple_cpu * len(tuples)
        )
        row_bytes = (
            self.registry.schema.table(resource.table_name).row_bytes()
            if self.registry.schema.exists(resource.table_name)
            else 64
        )
        nbytes = 60 + len(tuples) * (row_bytes + 32)
        return 200, {"tuples": tuples}, nbytes

    def _consumer_latest(self, request: HttpRequest) -> Generator[Any, Any, tuple]:
        result = yield from self._one_shot(request, "latest")
        return result

    def _consumer_history(self, request: HttpRequest) -> Generator[Any, Any, tuple]:
        result = yield from self._one_shot(request, "history")
        return result

    def _one_shot(self, request: HttpRequest, mode: str) -> Generator[Any, Any, tuple]:
        stmt = parse_sql(request.body["sql"])
        if not isinstance(stmt, Select):
            return 500, {"error": "expected SELECT"}, 120
        yield from self.container.node.execute(self.config.query_cpu)
        tuples = []
        for entry in self.registry.producers.values():
            if entry.table != stmt.table:
                continue
            if entry.resource.container is not self.container:
                # Remote producer: one query round trip over the LAN.
                yield self.sim.timeout(0.004)
                yield from self.container.node.execute(self.config.query_cpu)
            source = (
                entry.resource.store.latest()
                if mode == "latest"
                else entry.resource.store.history()
            )
            for t in source:
                if stmt.where is not None and not stmt.where.matches(RowView(t.row)):
                    continue
                tuples.append(t)
        if stmt.columns:
            # SELECT-list projection: return only the requested columns.
            import dataclasses

            tuples = [
                dataclasses.replace(
                    t,
                    row={c: t.row.get(c) for c in stmt.columns},
                    meta=dict(t.meta),
                )
                for t in tuples
            ]
        yield from self.container.node.execute(
            self.config.query_tuple_cpu * len(tuples)
        )
        row_bytes = self.registry.schema.table(stmt.table).row_bytes()
        nbytes = 60 + len(tuples) * (row_bytes + 32)
        return 200, {"tuples": tuples}, nbytes

    def _consumer_close(self, request: HttpRequest) -> Generator[Any, Any, tuple]:
        resource = self.consumers.pop(request.body["resource_id"], None)
        if resource is not None:
            resource.close()
            self.container.jvm.free(self.config.per_consumer_heap)
        if False:  # pragma: no cover - generator shape
            yield
        return 200, {}, 40


class RGMADeployment:
    """A complete R-GMA installation on the Hydra cluster."""

    def __init__(
        self,
        sim: "Simulator",
        cluster: "HydraCluster",
        config: Optional[RGMAConfig] = None,
        transport: Optional[Any] = None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.config = config or RGMAConfig()
        # HTTP by default; pass a TlsTransport for the HTTPS configuration
        # the paper avoided ("encryption overhead", §III.F).
        self.transport = transport or TcpTransport(sim, cluster.lan)
        self.schema = Schema()
        self.schema.create_table(grid_monitoring_table())
        self.registry: Optional[Registry] = None
        self.sites: list[RGMASite] = []
        #: host name -> site, for clients picking a server.
        self.producer_hosts: list[str] = []
        self.consumer_hosts: list[str] = []

    # ------------------------------------------------------------ builders
    @classmethod
    def single_server(
        cls,
        sim: "Simulator",
        cluster: "HydraCluster",
        config: Optional[RGMAConfig] = None,
        node_name: str = "hydra1",
        transport: Optional[Any] = None,
    ) -> "RGMADeployment":
        deployment = cls(sim, cluster, config, transport)
        node = cluster.node(node_name)
        deployment.registry = Registry(
            sim, node, deployment.schema, deployment.config
        )
        deployment._add_site(node_name)
        deployment.producer_hosts = [node_name]
        deployment.consumer_hosts = [node_name]
        return deployment

    @classmethod
    def distributed(
        cls,
        sim: "Simulator",
        cluster: "HydraCluster",
        config: Optional[RGMAConfig] = None,
        producer_nodes: tuple[str, ...] = ("hydra1", "hydra2"),
        consumer_nodes: tuple[str, ...] = ("hydra3", "hydra4"),
    ) -> "RGMADeployment":
        deployment = cls(sim, cluster, config)
        registry_node = cluster.node(producer_nodes[0])
        deployment.registry = Registry(
            sim, registry_node, deployment.schema, deployment.config
        )
        for name in dict.fromkeys(producer_nodes + consumer_nodes):
            deployment._add_site(name)
        deployment.producer_hosts = list(producer_nodes)
        deployment.consumer_hosts = list(consumer_nodes)
        return deployment

    def _add_site(self, node_name: str) -> RGMASite:
        node = self.cluster.node(node_name)
        container = ServletContainer(
            self.sim, node, f"tomcat-{node_name}", self.config
        )
        container.start(self.transport, HTTP_PORT)
        container.start_stream_listener(self.transport, STREAM_PORT)
        assert self.registry is not None
        site = RGMASite(container, self.registry)
        container.stream_sink = lambda payload, s=site: self._sink(s, payload)
        self.sites.append(site)
        return site

    @staticmethod
    def _sink(site: RGMASite, payload: Any) -> Generator[Any, Any, None]:
        kind, resource_id, batch = payload
        if kind != "batch":
            raise RGMAException(f"unexpected stream payload {kind!r}")
        resource = site.consumers.get(resource_id)
        if resource is None:
            return
        yield from resource._on_batch(batch)

    # -------------------------------------------------------------- clients
    def site_for(self, host: str) -> RGMASite:
        for site in self.sites:
            if site.container.node.name == host:
                return site
        raise RGMAException(f"no site on {host}")

    def producer_client(
        self, client_node: "Node", index: int = 0
    ) -> PrimaryProducerClient:
        host = self.producer_hosts[index % len(self.producer_hosts)]
        return PrimaryProducerClient(
            self.sim, self.transport, client_node, host, HTTP_PORT
        )

    def consumer_client(
        self, client_node: "Node", index: int = 0
    ) -> ConsumerClient:
        host = self.consumer_hosts[index % len(self.consumer_hosts)]
        return ConsumerClient(
            self.sim, self.transport, client_node, host, HTTP_PORT
        )
