"""The Relational Grid Monitoring Architecture (R-GMA).

"The novel design of R-GMA is that it has a large virtual database ... which
looks and operates like a conventional relational database.  It supports a
subset of the standard SQL language.  Data are published using SQL INSERT
statement and queried using SQL SELECT statement.  ...  a virtual database
has no central storage and data are distributed all over the network"
(paper §II.A).

This package implements the full pipeline the paper benchmarks in §III.F:

* :mod:`repro.rgma.sql` — the SQL subset (CREATE TABLE / INSERT / SELECT
  with WHERE predicates reusing the selector engine);
* :mod:`repro.rgma.schema` — the schema service (table definitions);
* :mod:`repro.rgma.storage` — producer memory storage with the paper's
  latest/history retention periods;
* :mod:`repro.rgma.registry` — registry + mediator: producer/consumer
  registration and continuous-query matchmaking, including the propagation
  delay behind the paper's "warm-up" requirement;
* :mod:`repro.rgma.servlet` — a Tomcat-like servlet container (worker pool,
  connector limits, per-connection heap: the OOM wall below 800 clients);
* :mod:`repro.rgma.producer` — Primary and Secondary Producer resources and
  client APIs (the Secondary Producer carries the deliberate 30 s republish
  delay the paper discovered);
* :mod:`repro.rgma.consumer` — the Consumer resource (continuous, latest
  and history queries) and the polling client;
* :mod:`repro.rgma.site` — deployment assembly: single-server and
  distributed R-GMA installations.
"""

from repro.rgma.errors import RGMAException, RGMATemporaryException
from repro.rgma.sql import CreateTable, Insert, Select, parse_sql
from repro.rgma.schema import ColumnDef, Schema, TableDef
from repro.rgma.storage import Tuple, TupleStore
from repro.rgma.registry import Registry, RGMAConfig
from repro.rgma.servlet import ServletContainer
from repro.rgma.producer import (
    PrimaryProducerClient,
    PrimaryProducerResource,
    SecondaryProducerResource,
)
from repro.rgma.consumer import ConsumerClient, ConsumerResource
from repro.rgma.site import RGMADeployment

__all__ = [
    "ColumnDef",
    "ConsumerClient",
    "ConsumerResource",
    "CreateTable",
    "Insert",
    "PrimaryProducerClient",
    "PrimaryProducerResource",
    "RGMAConfig",
    "RGMADeployment",
    "RGMAException",
    "RGMATemporaryException",
    "Registry",
    "Schema",
    "SecondaryProducerResource",
    "Select",
    "ServletContainer",
    "TableDef",
    "Tuple",
    "TupleStore",
    "parse_sql",
]
