"""The schema service: table definitions for the virtual database.

"Data discovery is through registry and schema" (paper §II.A).  The schema
holds table structure; the registry (see :mod:`repro.rgma.registry`) holds
who produces/consumes each table.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Optional

from repro.rgma.errors import RGMAException
from repro.rgma.sql import CreateTable

_CHAR_RE = re.compile(r"^(VARCHAR|CHAR)\((\d+)\)$")


@dataclass(frozen=True)
class ColumnDef:
    name: str
    sql_type: str  # INTEGER | REAL | DOUBLE | VARCHAR(n) | CHAR(n) | TIMESTAMP

    def validate(self, value: Any) -> None:
        if value is None:
            return
        t = self.sql_type
        if t in ("INTEGER", "INT"):
            if not isinstance(value, int) or isinstance(value, bool):
                raise RGMAException(f"column {self.name}: expected INTEGER")
        elif t in ("REAL", "DOUBLE", "TIMESTAMP"):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise RGMAException(f"column {self.name}: expected {t}")
        else:
            m = _CHAR_RE.match(t)
            if m is None:
                raise RGMAException(f"column {self.name}: unknown type {t}")
            if not isinstance(value, str):
                raise RGMAException(f"column {self.name}: expected string")
            if len(value) > int(m.group(2)):
                raise RGMAException(
                    f"column {self.name}: string longer than {m.group(2)}"
                )

    def storage_bytes(self) -> int:
        """Approximate per-value storage/wire footprint."""
        t = self.sql_type
        if t in ("INTEGER", "INT"):
            return 4
        if t in ("REAL", "DOUBLE", "TIMESTAMP"):
            return 8
        m = _CHAR_RE.match(t)
        assert m is not None
        return int(m.group(2))


@dataclass(frozen=True)
class TableDef:
    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: tuple[str, ...]

    def column(self, name: str) -> ColumnDef:
        for col in self.columns:
            if col.name == name:
                return col
        raise RGMAException(f"table {self.name}: no column {name!r}")

    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def validate_row(self, row: dict[str, Any]) -> None:
        for key in row:
            self.column(key).validate(row[key])
        for pk in self.primary_key:
            if row.get(pk) is None:
                raise RGMAException(f"table {self.name}: primary key {pk} missing")

    def row_bytes(self) -> int:
        """Nominal row footprint (used for wire/heap modelling)."""
        return sum(c.storage_bytes() for c in self.columns) + 8  # + timestamp

    def key_of(self, row: dict[str, Any]) -> tuple:
        return tuple(row.get(pk) for pk in self.primary_key)


class Schema:
    """Table registry for one virtual database."""

    def __init__(self) -> None:
        self._tables: dict[str, TableDef] = {}

    def create_table(self, stmt: CreateTable) -> TableDef:
        if stmt.table in self._tables:
            raise RGMAException(f"table {stmt.table!r} already exists")
        columns = tuple(ColumnDef(n, t) for n, t in stmt.columns)
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise RGMAException("duplicate column names")
        for pk in stmt.primary_key:
            if pk not in names:
                raise RGMAException(f"primary key {pk!r} is not a column")
        table = TableDef(stmt.table, columns, stmt.primary_key)
        self._tables[stmt.table] = table
        return table

    def table(self, name: str) -> TableDef:
        try:
            return self._tables[name]
        except KeyError:
            raise RGMAException(f"unknown table {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)


def grid_monitoring_table() -> CreateTable:
    """The paper's monitoring table: 4 integer, 8 double, 4 char(20) values
    (§III.F), keyed by generator id."""
    cols: list[tuple[str, str]] = [("genid", "INTEGER")]
    cols += [(f"ival{i}", "INTEGER") for i in range(1, 4)]
    cols += [(f"dval{i}", "DOUBLE") for i in range(1, 9)]
    cols += [(f"sval{i}", "CHAR(20)") for i in range(1, 5)]
    return CreateTable("gridmon", tuple(cols), ("genid",))
