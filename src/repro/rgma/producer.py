"""Primary and Secondary Producer resources, and the producer client API.

"The generator then used Primary Producer API to publish monitoring data
into a table at the interval of 10 seconds" (paper §III.F).  A producer
*resource* lives server-side in a servlet container and owns a
:class:`~repro.rgma.storage.TupleStore`; attached consumers receive new
tuples in periodic stream batches over a raw TCP channel, with the
consumer's WHERE predicate applied producer-side (content-based filtering).

The Secondary Producer re-publishes everything it consumes into its own
store **after a fixed 30-second delay** — "we contacted R-GMA developers and
found that there was now a deliberate delay of 30 seconds in the Secondary
Producer" (§III.F.3).
"""

from __future__ import annotations

import dataclasses
from itertools import count
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.rgma.errors import RGMAException
from repro.rgma.registry import Registry, RGMAConfig
from repro.rgma.sql import Insert, RowView, parse_sql, render_insert
from repro.rgma.storage import Tuple, TupleStore
from repro.telemetry.context import current as _telemetry
from repro.transport.base import ChannelClosed, MessageLost
from repro.transport.http import HttpClient

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.rgma.consumer import ConsumerResource
    from repro.rgma.servlet import ServletContainer
    from repro.sim.kernel import Simulator

_resource_seq = count(1)


@dataclasses.dataclass
class _Attachment:
    consumer: "ConsumerResource"
    attach_time: float
    cursor_seq: int
    tuples_streamed: int = 0


class ProducerResourceBase:
    """Shared machinery: tuple store + periodic streaming to consumers."""

    def __init__(
        self,
        container: "ServletContainer",
        registry: Registry,
        table_name: str,
        resource_id: str,
    ):
        self.container = container
        self.registry = registry
        self.sim = container.sim
        self.config = container.config
        self.table_name = table_name
        self.resource_id = resource_id
        schema_table = registry_schema(registry).table(table_name)
        self.store = TupleStore(
            self.sim,
            schema_table,
            latest_retention=self.config.latest_retention,
            history_retention=self.config.history_retention,
        )
        self._attachments: dict[str, _Attachment] = {}
        self.closed = False
        self.producer_id: Optional[str] = None  # set after registration
        self.sim.process(self._stream_loop(), name=f"{resource_id}.stream")

    # ------------------------------------------------------------ mediation
    def attach_consumer(self, consumer: "ConsumerResource") -> bool:
        """Mediator hook.  Returns True when this is a new attachment."""
        if consumer.resource_id in self._attachments or self.closed:
            return False
        cutoff = self.sim.now - self.config.history_overlap
        cursor = 0
        for t in self.store.history():
            if t.insert_time < cutoff:
                cursor = max(cursor, t.seq)
        self._attachments[consumer.resource_id] = _Attachment(
            consumer=consumer, attach_time=self.sim.now, cursor_seq=cursor
        )
        return True

    def detach_consumer(self, consumer: "ConsumerResource") -> None:
        self._attachments.pop(consumer.resource_id, None)

    @property
    def attachment_count(self) -> int:
        return len(self._attachments)

    # ------------------------------------------------------------ streaming
    def _stream_loop(self) -> Generator[Any, Any, None]:
        cfg = self.config
        while not self.closed:
            yield self.sim.timeout(cfg.stream_period)
            self.store.purge()
            for attachment in list(self._attachments.values()):
                fresh = self.store.since_seq(attachment.cursor_seq)
                if not fresh:
                    continue
                attachment.cursor_seq = fresh[-1].seq
                predicate = attachment.consumer.predicate
                batch = []
                for t in fresh:
                    if predicate is not None and not predicate.matches(
                        RowView(t.row)
                    ):
                        continue
                    copy = dataclasses.replace(t, meta=dict(t.meta))
                    copy.meta["t_streamed"] = self.sim.now
                    batch.append(copy)
                if not batch:
                    continue
                attachment.tuples_streamed += len(batch)
                yield from self.container.node.execute(
                    cfg.stream_tuple_cpu * len(batch)
                )
                yield from self._send_batch(attachment.consumer, batch)

    def _send_batch(
        self, consumer: "ConsumerResource", batch: list[Tuple]
    ) -> Generator[Any, Any, None]:
        cfg = self.config
        row_bytes = self.store.table.row_bytes()
        nbytes = cfg.stream_batch_overhead_bytes + len(batch) * (
            row_bytes + cfg.stream_tuple_overhead_bytes
        )
        if consumer.container is self.container:
            # Same JVM: hand over directly (no wire).
            yield from consumer._on_batch(batch)
            return
        channel = yield from self.container.stream_channel_to(consumer.container)
        try:
            yield from channel.send(("batch", consumer.resource_id, batch), nbytes)
        except (MessageLost, ChannelClosed):
            pass  # stream breakage: tuples lost (counted by the harness)

    # ----------------------------------------------------------------- close
    def close(self) -> None:
        self.closed = True
        if self.producer_id is not None:
            self.registry.deregister_producer(self.producer_id)


class PrimaryProducerResource(ProducerResourceBase):
    """Server-side Primary Producer: stores rows arriving via INSERT."""

    def insert_row(
        self, row: dict[str, Any], meta: Optional[dict] = None
    ) -> Tuple:
        if self.closed:
            raise RGMAException(f"producer {self.resource_id} is closed")
        meta = dict(meta or {})
        meta["t_stored"] = self.sim.now
        tel = _telemetry()
        if tel is not None:
            record = meta.get("record")
            if record is not None:
                tel.mark(
                    record, "broker_in", self.sim.now, "rgma",
                    f"pp.{self.container.node.name}",
                )
        return self.store.insert(row, meta)


class SecondaryProducerResource(ProducerResourceBase):
    """Consumes from Primary Producers and republishes after a fixed delay.

    The republished tuples land in this resource's own store, so consumers
    reading "via" the Secondary Producer see PP-to-SP latency + 30 s + the
    normal streaming path.
    """

    def ingest(self, t: Tuple) -> None:
        """Called (via the internal consumer) for every tuple received."""

        def republish() -> Generator[Any, Any, None]:
            yield self.sim.timeout(self.config.secondary_producer_delay)
            if self.closed:
                return
            meta = dict(t.meta)
            meta["t_sp_republished"] = self.sim.now
            self.store.insert(t.row, meta)

        self.sim.process(republish(), name=f"{self.resource_id}.republish")


def registry_schema(registry: Registry):
    """The schema shared through the registry (one virtual database)."""
    schema = getattr(registry, "schema", None)
    if schema is None:
        raise RGMAException("registry has no schema attached")
    return schema


# --------------------------------------------------------------- client API

class PrimaryProducerClient:
    """Client-side Primary Producer API (runs on a generator node).

    Mirrors the paper's usage: create against a producer server, insert a
    row every publish interval, close.
    """

    def __init__(
        self,
        sim: "Simulator",
        transport: Any,
        node: "Node",
        server_host: str,
        port: int,
    ):
        self.sim = sim
        self.node = node
        self.http = HttpClient(sim, transport, node, server_host, port)
        self.resource_id: Optional[str] = None
        self.table_name: Optional[str] = None
        self.inserts_ok = 0
        self.inserts_failed = 0

    def create(self, table_name: str) -> Generator[Any, Any, str]:
        """Declare the table; returns the server-side resource id."""
        response = yield from self.http.request(
            "/pp/create", {"table": table_name}, 180
        )
        if response.status != 200:
            raise RGMAException(f"create failed: {response.body}")
        self.resource_id = response.body["resource_id"]
        self.table_name = table_name
        return self.resource_id

    def insert(
        self, row: dict[str, Any], meta: Optional[dict] = None
    ) -> Generator[Any, Any, float]:
        """Publish one row; returns the Publishing Response Time (PRT)."""
        if self.resource_id is None:
            raise RGMAException("insert before create()")
        sql = render_insert(self.table_name, row)
        meta = dict(meta or {})
        meta["t_before_send"] = self.sim.now
        started = self.sim.now
        body_bytes = len(sql) + 64  # SQL text + resource id / framing
        response = yield from self.http.request(
            "/pp/insert",
            {"resource_id": self.resource_id, "sql": sql, "meta": meta},
            body_bytes,
        )
        if response.status == 200:
            self.inserts_ok += 1
        else:
            self.inserts_failed += 1
        return self.sim.now - started

    def close(self) -> Generator[Any, Any, None]:
        if self.resource_id is not None:
            yield from self.http.request(
                "/pp/close", {"resource_id": self.resource_id}, 120
            )
            self.resource_id = None
        self.http.close()
