"""Producer memory storage with retention periods.

"Primary Producers used memory storage to allow fast query.  The latest
retention period was set to 30 seconds and history retention period was set
to 1 minute" (paper §III.F).  The store keeps an append-ordered history for
continuous/history queries and a latest-tuple-per-key view for latest
queries; a purge sweep enforces both retention periods.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.rgma.schema import TableDef
    from repro.sim.kernel import Simulator

_tuple_seq = count(1)


@dataclass
class Tuple:
    """One published row plus provenance metadata."""

    table: str
    row: dict[str, Any]
    #: Simulated time the producer servlet stored the row.
    insert_time: float
    #: Client-side stamps for RTT decomposition (set by the harness/clients).
    meta: dict[str, float] = field(default_factory=dict)
    seq: int = field(default_factory=lambda: next(_tuple_seq))


class TupleStore:
    """In-memory storage for one (producer, table) pair."""

    def __init__(
        self,
        sim: "Simulator",
        table: "TableDef",
        latest_retention: float = 30.0,
        history_retention: float = 60.0,
    ):
        if latest_retention <= 0 or history_retention <= 0:
            raise ValueError("retention periods must be positive")
        self.sim = sim
        self.table = table
        self.latest_retention = latest_retention
        self.history_retention = history_retention
        self._history: deque[Tuple] = deque()
        self._latest: dict[tuple, Tuple] = {}
        self.inserted_count = 0
        self.purged_count = 0

    def insert(self, row: dict[str, Any], meta: Optional[dict] = None) -> Tuple:
        """Validate and store a row; returns the stored tuple."""
        self.table.validate_row(row)
        t = Tuple(
            table=self.table.name,
            row=dict(row),
            insert_time=self.sim.now,
            meta=dict(meta or {}),
        )
        self._history.append(t)
        self._latest[self.table.key_of(row)] = t
        self.inserted_count += 1
        return t

    # ---------------------------------------------------------------- reads
    def history(self, since: float = float("-inf")) -> list[Tuple]:
        """Tuples still inside the history retention, newer than ``since``."""
        self.purge()
        return [t for t in self._history if t.insert_time > since]

    def latest(self) -> list[Tuple]:
        """Latest tuple per primary key, inside the latest retention."""
        self.purge()
        horizon = self.sim.now - self.latest_retention
        return [t for t in self._latest.values() if t.insert_time >= horizon]

    def since_seq(self, seq: int) -> list[Tuple]:
        """Tuples with sequence number greater than ``seq`` (stream cursor)."""
        return [t for t in self._history if t.seq > seq]

    def __len__(self) -> int:
        return len(self._history)

    @property
    def resident_bytes(self) -> float:
        """Approximate heap held by stored tuples."""
        return len(self._history) * (self.table.row_bytes() + 64)

    # ---------------------------------------------------------------- purge
    def purge(self) -> None:
        """Drop history older than the history retention and stale latest
        entries older than the latest retention."""
        history_horizon = self.sim.now - self.history_retention
        while self._history and self._history[0].insert_time < history_horizon:
            self._history.popleft()
            self.purged_count += 1
        latest_horizon = self.sim.now - self.latest_retention
        stale = [k for k, t in self._latest.items() if t.insert_time < latest_horizon]
        for key in stale:
            del self._latest[key]
