"""A Tomcat-like servlet container.

"R-GMA server ran within Tomcat.  The number of concurrent connection of
Tomcat was increased to 1000.  Memory allocated to Java Virtual Machine was
increased to 1GB" (paper §III.F).  The container enforces a connector
connection limit, serves requests from a bounded worker pool (queueing under
load), and charges heap per connection — together these produce the paper's
R-GMA scalability behaviour, including the out-of-memory wall below 800
concurrent producers on one server.

The container also owns the *stream port*: R-GMA tuple streaming bypasses
HTTP ("except data streaming which is implemented in a more efficient way",
§II.A) and arrives on a raw TCP listener that dispatches batches to consumer
resources.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.cluster.jvm import Jvm, OutOfMemoryError
from repro.rgma.errors import RGMAException, RGMATemporaryException
from repro.rgma.registry import RGMAConfig
from repro.sim import Resource
from repro.transport.base import EOF, Channel, ChannelClosed
from repro.transport.http import HttpRequest, HttpServer

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.sim.kernel import Simulator

#: A servlet handler: generator(request) -> (status, body, body_bytes).
Handler = Callable[[HttpRequest], Generator[Any, Any, tuple[int, Any, float]]]


class ServletContainer:
    """One Tomcat instance on one node."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        name: str,
        config: Optional[RGMAConfig] = None,
    ):
        self.sim = sim
        self.node = node
        self.name = name
        self.config = config or RGMAConfig()
        self.jvm = Jvm(
            sim,
            node,
            f"{name}.jvm",
            heap_bytes=self.config.heap_bytes,
            thread_stack_bytes=self.config.thread_stack_bytes,
            native_budget_bytes=self.config.native_budget_bytes,
        )
        self.workers = Resource(sim, self.config.worker_threads)
        self._servlets: dict[str, Handler] = {}
        self.connections = 0
        self.connections_refused = 0
        self.requests = 0
        #: Raw-stream batch sink, set by the consumer-side wiring.
        self.stream_sink: Optional[Callable[[Any], Generator]] = None
        self._http: Optional[HttpServer] = None
        #: Transport + port the stream listener is bound to (if any).
        self.transport: Optional[Any] = None
        self.stream_port: Optional[int] = None
        #: Outbound stream channels to other containers, keyed by (host, port).
        self._stream_channels: dict[tuple[str, int], Channel] = {}

    # -------------------------------------------------------------- servlets
    def deploy(self, path: str, handler: Handler) -> None:
        if path in self._servlets:
            raise RGMAException(f"servlet already deployed at {path!r}")
        self._servlets[path] = handler

    def start(self, transport: Any, port: int) -> None:
        self._http = HttpServer(
            self.sim,
            transport,
            self.node,
            port,
            dispatcher=self._dispatch,
            accept_hook=self._accept,
        )

    def start_stream_listener(self, transport: Any, port: int) -> None:
        """Raw TCP listener for inter-resource tuple streaming."""
        self.transport = transport
        self.stream_port = port
        transport.listen(self.node, port, self._accept_stream)

    def stream_channel_to(
        self, other: "ServletContainer"
    ) -> Generator[Any, Any, Channel]:
        """A (cached) raw TCP channel to another container's stream port."""
        if other.stream_port is None or other.transport is None:
            raise RGMAException(f"{other.name} has no stream listener")
        key = (other.node.name, other.stream_port)
        channel = self._stream_channels.get(key)
        if channel is None or channel.closed:
            channel = yield from other.transport.connect(
                self.node, other.node.name, other.stream_port
            )
            self._stream_channels[key] = channel
        return channel

    # ---------------------------------------------------------------- accept
    def _accept(self, channel: Channel) -> None:
        if self.connections >= self.config.max_connections:
            self.connections_refused += 1
            raise RGMATemporaryException(
                f"{self.name}: connector limit {self.config.max_connections}"
            )
        try:
            self.jvm.alloc(self.config.per_connection_heap, "connection")
        except OutOfMemoryError as exc:
            self.connections_refused += 1
            raise ChannelClosed(f"{self.name} out of memory: {exc}") from exc
        self.connections += 1

    def _accept_stream(self, channel: Channel) -> None:
        self.jvm.spawn_thread(
            self._stream_read_loop(channel), name=f"{self.name}.stream"
        )

    def _stream_read_loop(self, channel: Channel) -> Generator[Any, Any, None]:
        while True:
            delivery = yield channel.receive()
            if delivery.payload is EOF:
                return
            yield from self.node.execute(
                channel.cost_model.recv_cost(delivery.nbytes)
            )
            if self.stream_sink is not None:
                yield from self.stream_sink(delivery.payload)

    # -------------------------------------------------------------- dispatch
    def _dispatch(self, request: HttpRequest, respond: Callable[..., None]) -> None:
        self.sim.process(self._serve(request, respond), name=f"{self.name}.req")

    def _serve(
        self, request: HttpRequest, respond: Callable[..., None]
    ) -> Generator[Any, Any, None]:
        handler = self._match(request.path)
        if handler is None:
            respond(404, {"error": f"no servlet at {request.path}"}, 80)
            return
        yield self.workers.acquire()
        try:
            self.requests += 1
            try:
                status, body, nbytes = yield from handler(request)
            except RGMAException as exc:
                status, body, nbytes = 500, {"error": str(exc)}, 120
            except OutOfMemoryError as exc:
                status, body, nbytes = 503, {"error": f"OOM: {exc}"}, 120
            respond(status, body, nbytes)
        finally:
            self.workers.release()

    def _match(self, path: str) -> Optional[Handler]:
        # Longest-prefix match lets one servlet own a path subtree.
        best = None
        best_len = -1
        for prefix, handler in self._servlets.items():
            if path.startswith(prefix) and len(prefix) > best_len:
                best, best_len = handler, len(prefix)
        return best
