"""The legacy R-GMA Stream Producer / Archiver API.

The paper found a discrepancy with earlier measurements: "We find
discrepancies between our test results and [11], where the authors achieved
high performance with R-GMA.  This is because we tested different versions
of R-GMA.  They tested an old API of R-GMA (Stream Producer and Archiver)
and we tested a newer version (Primary Producer, Secondary Producer and
Consumer)" (§III.F.3).

The old API's pipeline was shorter: a Stream Producer pushed tuples straight
to registered Archivers over a socket as they arrived — no mediated Consumer
resource, no batch accumulation, no poll loop.  This module implements that
legacy path so the discrepancy is reproducible
(``ablation_rgma_legacy_api``).
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.rgma.errors import RGMAException
from repro.rgma.registry import Registry
from repro.rgma.sql import RowView, Select, parse_sql
from repro.rgma.storage import Tuple, TupleStore
from repro.transport.base import ChannelClosed, MessageLost
from repro.transport.http import HttpClient

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.rgma.servlet import ServletContainer
    from repro.sim.kernel import Simulator

_legacy_seq = count(1)

#: Per-tuple CPU on the legacy direct-push path (no mediation, no SQL
#: re-evaluation per consumer — a straight socket write).
LEGACY_PUSH_CPU = 0.0012
#: Per-tuple CPU at the archiver (decode + store).
LEGACY_ARCHIVE_CPU = 0.0015


class ArchiverResource:
    """Server-side archiver: receives pushed tuples, stores, and exposes
    them to a callback (the legacy subscriber path)."""

    def __init__(
        self,
        container: "ServletContainer",
        registry: Registry,
        table_name: str,
        resource_id: str,
        on_tuple: Optional[Callable[[Tuple], None]] = None,
        predicate: Optional[Any] = None,
    ):
        self.container = container
        self.registry = registry
        self.sim = container.sim
        self.table_name = table_name
        self.resource_id = resource_id
        self.on_tuple = on_tuple
        self.predicate = predicate
        schema = registry.schema
        self.store = TupleStore(self.sim, schema.table(table_name))
        self.tuples_received = 0
        self.closed = False

    def _on_push(self, batch: list[Tuple]) -> Generator[Any, Any, None]:
        if self.closed:
            return
        for t in batch:
            yield from self.container.node.execute(LEGACY_ARCHIVE_CPU)
            if self.predicate is not None and not self.predicate.matches(
                RowView(t.row)
            ):
                continue
            t.meta["t_archived"] = self.sim.now
            self.store.insert(t.row, t.meta)
            self.tuples_received += 1
            if self.on_tuple is not None:
                self.on_tuple(t)

    def close(self) -> None:
        self.closed = True


class StreamProducerResource:
    """Server-side legacy producer: pushes each tuple to every archiver as
    soon as it is inserted (no stream period, no mediation delay once
    attached)."""

    def __init__(
        self,
        container: "ServletContainer",
        registry: Registry,
        table_name: str,
        resource_id: str,
    ):
        self.container = container
        self.registry = registry
        self.sim = container.sim
        self.table_name = table_name
        self.resource_id = resource_id
        self.store = TupleStore(self.sim, registry.schema.table(table_name))
        self.archivers: list[ArchiverResource] = []
        self.closed = False

    def attach_archiver(self, archiver: ArchiverResource) -> None:
        if archiver not in self.archivers:
            self.archivers.append(archiver)

    def insert_row(
        self, row: dict[str, Any], meta: Optional[dict] = None
    ) -> Generator[Any, Any, Tuple]:
        """Store and immediately push to all archivers."""
        if self.closed:
            raise RGMAException(f"stream producer {self.resource_id} closed")
        meta = dict(meta or {})
        meta["t_stored"] = self.sim.now
        t = self.store.insert(row, meta)
        row_bytes = self.store.table.row_bytes()
        for archiver in list(self.archivers):
            yield from self.container.node.execute(LEGACY_PUSH_CPU)
            if archiver.container is self.container:
                yield from archiver._on_push([t])
                continue
            channel = yield from self.container.stream_channel_to(
                archiver.container
            )
            try:
                yield from channel.send(
                    ("legacy_push", archiver.resource_id, [t]), row_bytes + 96
                )
            except (MessageLost, ChannelClosed):
                pass
        return t

    def close(self) -> None:
        self.closed = True


class LegacyDeployment:
    """Wires the legacy servlets into an existing RGMADeployment.

    Adds ``/sp_legacy/create``, ``/sp_legacy/insert`` and
    ``/archiver/create`` endpoints to every site and extends the stream sink
    to route ``legacy_push`` batches.
    """

    def __init__(self, deployment: Any):
        self.deployment = deployment
        self.sim = deployment.sim
        self.stream_producers: dict[str, StreamProducerResource] = {}
        self.archivers: dict[str, ArchiverResource] = {}
        for site in deployment.sites:
            container = site.container
            container.deploy("/sp_legacy/create", self._make_create(container))
            container.deploy("/sp_legacy/insert", self._make_insert(container))
            container.deploy("/archiver/create", self._make_archiver(container))
            original_sink = container.stream_sink
            container.stream_sink = self._make_sink(original_sink)

    # ------------------------------------------------------------- servlets
    def _make_create(self, container: "ServletContainer"):
        def create(request) -> Generator[Any, Any, tuple]:
            table = request.body["table"]
            registry = self.deployment.registry
            if not registry.schema.exists(table):
                return 500, {"error": f"unknown table {table!r}"}, 120
            container.jvm.alloc(container.config.per_producer_heap, "legacy SP")
            resource_id = f"lsp-{next(_legacy_seq)}"
            resource = StreamProducerResource(
                container, registry, table, resource_id
            )
            # Legacy attach: connect to every existing archiver immediately
            # (the old API looked archivers up synchronously at creation).
            yield from registry.node.execute(registry.config.registration_cpu)
            for archiver in self.archivers.values():
                if archiver.table_name == table:
                    resource.attach_archiver(archiver)
            self.stream_producers[resource_id] = resource
            return 200, {"resource_id": resource_id}, 100

        return create

    def _make_insert(self, container: "ServletContainer"):
        def insert(request) -> Generator[Any, Any, tuple]:
            resource = self.stream_producers.get(request.body["resource_id"])
            if resource is None or resource.container is not container:
                return 500, {"error": "no such stream producer"}, 120
            yield from container.node.execute(container.config.insert_cpu)
            stmt = parse_sql(request.body["sql"])
            table = self.deployment.registry.schema.table(stmt.table)
            columns = stmt.columns or table.column_names()
            row = dict(zip(columns, stmt.values))
            yield from resource.insert_row(row, request.body.get("meta"))
            return 200, {}, 40

        return insert

    def _make_archiver(self, container: "ServletContainer"):
        def create(request) -> Generator[Any, Any, tuple]:
            table = request.body["table"]
            registry = self.deployment.registry
            if not registry.schema.exists(table):
                return 500, {"error": f"unknown table {table!r}"}, 120
            container.jvm.alloc(container.config.per_consumer_heap, "archiver")
            resource_id = f"arch-{next(_legacy_seq)}"
            where = request.body.get("where")
            predicate = None
            if where:
                stmt = parse_sql(f"SELECT * FROM {table} WHERE {where}")
                predicate = stmt.where
            archiver = ArchiverResource(
                container, registry, table, resource_id, predicate=predicate
            )
            self.archivers[resource_id] = archiver
            for producer in self.stream_producers.values():
                if producer.table_name == table:
                    producer.attach_archiver(archiver)
            yield from registry.node.execute(registry.config.registration_cpu)
            return 200, {"resource_id": resource_id}, 100

        return create

    def _make_sink(self, original: Optional[Callable]):
        def sink(payload) -> Generator[Any, Any, None]:
            if payload[0] == "legacy_push":
                _, resource_id, batch = payload
                archiver = self.archivers.get(resource_id)
                if archiver is not None:
                    yield from archiver._on_push(batch)
                return
            if original is not None:
                yield from original(payload)

        return sink

    # ----------------------------------------------------------- client API
    def archiver_callback(self, resource_id: str, fn: Callable[[Tuple], None]) -> None:
        self.archivers[resource_id].on_tuple = fn


class StreamProducerClient:
    """Client API for the legacy Stream Producer."""

    def __init__(
        self,
        sim: "Simulator",
        transport: Any,
        node: "Node",
        server_host: str,
        port: int,
    ):
        self.sim = sim
        self.node = node
        self.http = HttpClient(sim, transport, node, server_host, port)
        self.resource_id: Optional[str] = None
        self.table_name: Optional[str] = None

    def create(self, table_name: str) -> Generator[Any, Any, str]:
        response = yield from self.http.request(
            "/sp_legacy/create", {"table": table_name}, 160
        )
        if response.status != 200:
            raise RGMAException(f"legacy create failed: {response.body}")
        self.resource_id = response.body["resource_id"]
        self.table_name = table_name
        return self.resource_id

    def insert(
        self, row: dict[str, Any], meta: Optional[dict] = None
    ) -> Generator[Any, Any, None]:
        from repro.rgma.sql import render_insert

        if self.resource_id is None:
            raise RGMAException("insert before create()")
        sql = render_insert(self.table_name, row)
        meta = dict(meta or {})
        meta["t_before_send"] = self.sim.now
        response = yield from self.http.request(
            "/sp_legacy/insert",
            {"resource_id": self.resource_id, "sql": sql, "meta": meta},
            len(sql) + 64,
        )
        if response.status != 200:
            raise RGMAException(f"legacy insert failed: {response.body}")
