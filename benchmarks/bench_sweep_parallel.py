"""Machine-readable perf trajectory: kernel hot paths + parallel sweeps.

Unlike the other benches (which regenerate paper figures), this one tracks
the *harness itself*: how fast the simulation kernel retires events, and
what ``--jobs N`` plus the two-tier sweep cache buy on a real sweep.  It
writes everything it measures to ``benchmarks/results/BENCH_kernel.json``
(uploaded as a CI artifact) so the perf trajectory of the repo is a
reviewable number, not a claim.

Regression gate: absolute timings are machine-dependent, so the kernel
guard is a *ratio* measured within one run — the 10k-event kernel loop
against a raw ``heapq`` push/pop loop over the same tuples (the
irreducible cost of the kernel's own data structure).  The optimised loop
measures ~2.05× the floor; the limit of 2.5 is ~20 % above that, so a
>20 % event-throughput regression fails CI on any host.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from heapq import heappop, heappush
from pathlib import Path

import pytest

from repro.harness import runner
from repro.sim import Simulator, Store

RESULTS_DIR = Path(__file__).parent / "results"
OUT_PATH = RESULTS_DIR / "BENCH_kernel.json"

N_EVENTS = 10_000
N_SWITCHES = 2_000

#: Kernel-loop / raw-heap-loop ratio above which CI fails (see module doc).
EVENT_OVERHEAD_LIMIT = 2.5

#: Results accumulated by the tests and flushed once per session.
_report: dict = {}


@pytest.fixture(scope="session", autouse=True)
def bench_report():
    _report.update(
        schema="repro.bench_kernel/1",
        host={
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
    )
    yield _report
    RESULTS_DIR.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(_report, indent=2) + "\n", encoding="utf-8")


def _best_of(fn, rounds: int = 7) -> float:
    """Minimum wall-clock over ``rounds`` runs (the stablest estimator)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ------------------------------------------------------------ kernel paths

def _event_loop():
    sim = Simulator()
    for i in range(N_EVENTS):
        sim.timeout(i * 0.001)
    sim.run()


def _raw_heap_floor():
    heap: list = []
    push, pop = heappush, heappop
    for i in range(N_EVENTS):
        push(heap, (i * 0.001, i, None))
    while heap:
        pop(heap)


def _switch_loop():
    sim = Simulator()
    store_a, store_b = Store(sim), Store(sim)

    def ping():
        for _ in range(N_SWITCHES // 2):
            yield store_a.put("x")
            yield store_b.get()

    def pong():
        for _ in range(N_SWITCHES // 2):
            yield store_a.get()
            yield store_b.put("y")

    sim.process(ping())
    sim.process(pong())
    sim.run()


def test_kernel_event_throughput_vs_floor(bench_report):
    events_s = _best_of(_event_loop)
    floor_s = _best_of(_raw_heap_floor)
    switch_s = _best_of(_switch_loop)
    ratio = events_s / floor_s
    bench_report["kernel"] = {
        "events": N_EVENTS,
        "events_best_s": events_s,
        "events_per_s": N_EVENTS / events_s,
        "raw_heap_floor_s": floor_s,
        "overhead_ratio": ratio,
        "overhead_ratio_limit": EVENT_OVERHEAD_LIMIT,
        "switches": N_SWITCHES,
        "switch_best_s": switch_s,
        "switches_per_s": N_SWITCHES / switch_s,
    }
    assert ratio <= EVENT_OVERHEAD_LIMIT, (
        f"kernel event loop is {ratio:.2f}x the raw-heap floor "
        f"(limit {EVENT_OVERHEAD_LIMIT}): event throughput regressed >20%"
    )


# --------------------------------------------------- sweep fan-out + cache

def test_sweep_wall_clock_parallel_and_cache(scale, bench_report):
    """fig7 three ways: serial cold, warm disk cache, ``--jobs <nproc>``.

    The serial and parallel runs must agree exactly (the fan-out's
    determinism contract); the speedup itself is only asserted on hosts
    with enough cores to show one, but is always *recorded*.
    """
    cpu_count = os.cpu_count() or 1
    jobs = cpu_count

    runner.clear_cache()
    t0 = time.perf_counter()
    serial = runner.run("fig7", scale=scale, jobs=1)
    serial_s = time.perf_counter() - t0

    runner._sweep_cache.clear()  # memory tier only: measure a *disk* hit
    t0 = time.perf_counter()
    warm = runner.run("fig7", scale=scale, jobs=1)
    cache_hit_s = time.perf_counter() - t0

    runner.clear_cache()
    t0 = time.perf_counter()
    parallel = runner.run("fig7", scale=scale, jobs=jobs)
    parallel_s = time.perf_counter() - t0
    runner.clear_cache()

    bench_report["sweep"] = {
        "experiment": "fig7",
        "scale": scale,
        "serial_cold_s": serial_s,
        "disk_cache_hit_s": cache_hit_s,
        "cache_hit_speedup": serial_s / cache_hit_s,
        "cpu_count": cpu_count,
        "parallel_jobs": jobs,
        "parallel_cold_s": parallel_s,
        "parallel_speedup": serial_s / parallel_s,
    }

    assert serial.series == parallel.series == warm.series
    assert serial.notes == parallel.notes
    assert cache_hit_s < 5.0, f"warm-cache re-run took {cache_hit_s:.1f}s"
    if cpu_count == 1:
        return  # single-core host: speedup ~1.0 is expected, not a regression
    if jobs >= 4:
        speedup = serial_s / parallel_s
        assert speedup >= 1.5, (
            f"--jobs {jobs} only {speedup:.2f}x faster than serial"
        )
