"""Benchmark-suite plumbing.

Each ``bench_*.py`` regenerates one table/figure of the paper via the
harness, asserts the paper's qualitative shape, and writes the rendered
series to ``benchmarks/results/<experiment>.txt`` so the numbers that back
EXPERIMENTS.md are reproducible artefacts.

Scale selection:

* default: the ``bench`` preset (compressed durations, real connection
  counts) — the whole suite runs in minutes;
* ``REPRO_SCALE=smoke|bench|full`` overrides;
* ``REPRO_FULL=1`` selects the paper-scale preset (30-minute runs).

Sweeps are shared across benches through the runner's in-process cache, so
e.g. fig6/7/8 pay for the Narada scaling sweep once.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    if os.environ.get("REPRO_FULL") == "1":
        return "full"
    return os.environ.get("REPRO_SCALE", "bench")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result) -> None:
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n", encoding="utf-8")

    return _save


def run_experiment(
    benchmark, experiment_id: str, scale: str, save_result, rounds: int = 1
):
    """Run one experiment under pytest-benchmark and persist its output.

    The runner's sweep cache is kept warm for the *first* round (so benches
    sharing a sweep — e.g. fig6/7/8 — pay for it once) but cleared between
    subsequent rounds: repeated rounds should measure the experiment, not a
    cache hit.  The cache itself is LRU-bounded (``runner.SWEEP_CACHE_MAX``)
    so a long bench session cannot accumulate every sweep's RecordBooks.
    """
    from repro.harness import runner

    state = {"round": 0}

    def _setup():
        if state["round"] > 0:
            runner.clear_cache()
        state["round"] += 1
        return (), {}

    result = benchmark.pedantic(
        lambda: runner.run(experiment_id, scale=scale),
        setup=_setup,
        rounds=rounds,
        iterations=1,
    )
    save_result(result)
    return result
