"""Fig 9: Narada DBN percentile of RTT, 2000-4000 connections.

Paper shape: same stacking as Fig 8 but shifted right (more connections)
with a heavier tail at 4000 (hub nearing saturation; up to ~450 ms).
"""

from benchmarks.conftest import run_experiment


def test_fig9_dbn_percentiles(benchmark, scale, save_result):
    result = run_experiment(benchmark, "fig9", scale, save_result)
    labels = sorted(result.series, key=int)
    assert int(labels[-1]) >= 4000

    curves = {
        label: {p.x: p.y for p in result.series[label]} for label in labels
    }
    for curve in curves.values():
        values = [curve[p] for p in sorted(curve)]
        assert values == sorted(values)

    low, high = labels[0], labels[-1]
    assert curves[high][99.0] > curves[low][99.0]
    # Heavy but bounded tail at 4000 (paper: hundreds of ms, not seconds).
    assert 20 < curves[high][100.0] < 1000
