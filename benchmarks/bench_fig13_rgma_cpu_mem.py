"""Fig 13: R-GMA CPU idle and memory, single vs distributed.

Paper shape: the single server's CPU idle collapses and memory climbs with
connections; "CPU load of a distributed architecture is lower than a single
server.  The results strongly suggest that R-GMA scales very well."
"""

from benchmarks.conftest import run_experiment


def test_fig13_rgma_cpu_mem(benchmark, scale, save_result):
    result = run_experiment(benchmark, "fig13", scale, save_result)
    cpu = {p.x: p.y for p in result.series["CPU"]}
    mem = {p.x: p.y for p in result.series["MEM"]}
    cpu2 = {p.x: p.y for p in result.series["CPU2"]}

    xs = sorted(cpu)
    assert [cpu[x] for x in xs] == sorted((cpu[x] for x in xs), reverse=True)
    assert [mem[x] for x in xs] == sorted(mem[x] for x in xs)

    # Distributed idle exceeds single-server idle at common counts.
    overlap = set(cpu) & set(cpu2)
    assert overlap
    for x in overlap:
        assert cpu2[x] > cpu[x], "distributing sheds per-node load"
