"""Fig 6: Narada CPU idle and memory consumption vs connections.

Paper shape: CPU idle falls and memory rises as connections grow; the DBN
spreads the same work across four brokers (its per-node memory is smaller)
while its total CPU cost is inflated by the broadcast flaw.
"""

from benchmarks.conftest import run_experiment


def test_fig6_cpu_mem(benchmark, scale, save_result):
    result = run_experiment(benchmark, "fig6", scale, save_result)
    cpu = {p.x: p.y for p in result.series["CPU"]}
    mem = {p.x: p.y for p in result.series["MEM"]}
    cpu2 = {p.x: p.y for p in result.series["CPU2"]}
    mem2 = {p.x: p.y for p in result.series["MEM2"]}

    xs = sorted(cpu)
    # CPU idle decreases, memory increases with connections.
    assert [cpu[x] for x in xs] == sorted((cpu[x] for x in xs), reverse=True)
    assert [mem[x] for x in xs] == sorted(mem[x] for x in xs)

    xs2 = sorted(cpu2)
    assert [cpu2[x] for x in xs2] == sorted((cpu2[x] for x in xs2), reverse=True)
    assert [mem2[x] for x in xs2] == sorted(mem2[x] for x in xs2)

    # Memory scales with connection count (per-connection buffers+stacks).
    assert mem[xs[-1]] > 2 * mem[xs[0]]
    # The DBN covers higher connection counts than the single broker.
    assert max(xs2) > max(xs)
