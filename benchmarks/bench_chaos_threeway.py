"""Chaos: the three middlewares under one deterministic fault schedule.

The ``loss_burst`` plan raises per-fragment datagram loss to 25 % over the
middle of the measurement window.  Expected shape: the TCP-based R-GMA
pipeline never loses a message to the burst; the plog over acked UDP loses
a visible fraction without producer retry and (acceptance criterion)
under 0.5 % with retry-with-backoff; Narada's push delivery cannot recover
broker-to-subscriber datagrams, so its loss sits between those extremes.
"""

from benchmarks.conftest import run_experiment


def test_chaos_threeway(benchmark, scale, save_result):
    result = run_experiment(benchmark, "chaos_threeway", scale, save_result)
    assert len(result.table[1]) == 4
    runs = result.meta["runs"]

    no_retry = runs["Plog (UDP, no retry)"]
    retry = runs["Plog (UDP, retry)"]
    rgma = runs["R-GMA (TCP)"]
    narada = runs["Narada (UDP, retry)"]

    # The burst is real: the one-shot producer loses messages.
    assert no_retry.loss_rate > 0.0
    # Recovery heals it below the paper's §I requirement (0.5 %).
    assert retry.loss_rate < 0.005
    assert retry.loss_rate < no_retry.loss_rate
    assert retry.producer_retries > 0
    # TCP stream traffic is never dropped by the loss windows.
    assert rgma.loss_rate == 0.0
    # Narada's unrecoverable push leg keeps it lossy under the burst.
    assert narada.loss_rate > retry.loss_rate

    # Every leg carries a percentile curve and the injected timeline is
    # reported next to the measurements.
    for label in runs:
        assert len(result.series[label]) > 0
    assert any(note.startswith("fault:") for note in result.notes)
    assert result.meta["fault_plan"] == "loss_burst"


def test_chaos_broker_failover(benchmark, scale, save_result):
    result = run_experiment(benchmark, "chaos_broker_failover", scale, save_result)
    rows = result.table[1]
    assert [row[0] for row in rows] == [
        "one-shot (no recovery)", "retry", "retry + failover",
        "replicated (RF=2, acks=all, one-shot)",
    ]
    losses = [float(row[3].rstrip("%")) / 100.0 for row in rows]
    # Each added recovery mechanism strictly reduces loss; failover ends
    # below the §I requirement because new records route around the corpse.
    assert losses[0] > losses[1] >= losses[2]
    assert losses[2] < 0.005
    # The replicated leg's durability claim: elections happened and not a
    # single *acknowledged* record was lost, with no producer retry at all.
    replicated = result.meta["replicated_run"]
    assert replicated.elections > 0
    assert replicated.acked > 0
    assert replicated.acked_lost == 0


def test_chaos_replication(benchmark, scale, save_result):
    result = run_experiment(benchmark, "chaos_replication", scale, save_result)
    runs = result.meta["runs"]
    acked_all = runs["RF=2, acks=all (one-shot)"]
    # The headline contract: acks=all + a surviving in-sync replica means
    # zero acknowledged records lost across the leader elections.
    assert acked_all.elections > 0
    assert acked_all.acked_lost == 0
    assert acked_all.isr_shrinks > 0 and acked_all.isr_expands > 0
    # RF=3 + acks=all + retry drives *total* loss to ~zero as well: the
    # unacknowledged window is retried against the re-elected leader.
    full = runs["RF=3, acks=all + retry"]
    assert full.acked_lost == 0
    assert full.loss_rate < 0.005


def test_chaos_adaptive_backoff(benchmark, scale, save_result):
    result = run_experiment(benchmark, "chaos_adaptive_backoff", scale, save_result)
    runs = result.meta["runs"]
    fixed = runs["fixed backoff"]
    adaptive = runs["adaptive backoff (SRTT/RTTVAR)"]
    # The spike crosses the fixed timeout, so the fixed policy retries
    # (and duplicates) throughout the window; the adaptive RTO climbs
    # above the new RTT after a timeout or two and the storm stops.
    assert fixed.producer_retries > 0
    assert adaptive.producer_retries < fixed.producer_retries
    # Neither policy loses anything — the cost is duplicates + latency.
    assert fixed.loss_rate == 0.0
    assert adaptive.loss_rate == 0.0
