"""Chaos: the three middlewares under one deterministic fault schedule.

The ``loss_burst`` plan raises per-fragment datagram loss to 25 % over the
middle of the measurement window.  Expected shape: the TCP-based R-GMA
pipeline never loses a message to the burst; the plog over acked UDP loses
a visible fraction without producer retry and (acceptance criterion)
under 0.5 % with retry-with-backoff; Narada's push delivery cannot recover
broker-to-subscriber datagrams, so its loss sits between those extremes.
"""

from benchmarks.conftest import run_experiment


def test_chaos_threeway(benchmark, scale, save_result):
    result = run_experiment(benchmark, "chaos_threeway", scale, save_result)
    assert len(result.table[1]) == 4
    runs = result.meta["runs"]

    no_retry = runs["Plog (UDP, no retry)"]
    retry = runs["Plog (UDP, retry)"]
    rgma = runs["R-GMA (TCP)"]
    narada = runs["Narada (UDP, retry)"]

    # The burst is real: the one-shot producer loses messages.
    assert no_retry.loss_rate > 0.0
    # Recovery heals it below the paper's §I requirement (0.5 %).
    assert retry.loss_rate < 0.005
    assert retry.loss_rate < no_retry.loss_rate
    assert retry.producer_retries > 0
    # TCP stream traffic is never dropped by the loss windows.
    assert rgma.loss_rate == 0.0
    # Narada's unrecoverable push leg keeps it lossy under the burst.
    assert narada.loss_rate > retry.loss_rate

    # Every leg carries a percentile curve and the injected timeline is
    # reported next to the measurements.
    for label in runs:
        assert len(result.series[label]) > 0
    assert any(note.startswith("fault:") for note in result.notes)
    assert result.meta["fault_plan"] == "loss_burst"


def test_chaos_broker_failover(benchmark, scale, save_result):
    result = run_experiment(benchmark, "chaos_broker_failover", scale, save_result)
    rows = result.table[1]
    assert [row[0] for row in rows] == [
        "one-shot (no recovery)", "retry", "retry + failover",
    ]
    losses = [float(row[3].rstrip("%")) / 100.0 for row in rows]
    # Each added recovery mechanism strictly reduces loss; failover ends
    # below the §I requirement because new records route around the corpse.
    assert losses[0] > losses[1] >= losses[2]
    assert losses[2] < 0.005
