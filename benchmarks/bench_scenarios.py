"""Machine-readable scenario scorecards: SLAs under correlated grid stress.

The storm-front and alarm-storm scenarios run through the scenario engine
on every middleware and the per-leg SLA scores (deadline-miss %, loss %,
duplicate %, burst vs steady P99) land in
``benchmarks/results/BENCH_scenario.json`` (uploaded as a CI artifact) so
each middleware's behaviour under correlated bursts is a reviewable
number, not a claim.

Regression gates are *shape* properties, machine-independent:

* every leg must deliver messages during the bursts — burst P99 must be a
  finite number, never ``n/a`` (the scenario actually perturbed the run);
* the plog acks=all leg must deliver exactly-once — 0 duplicates;
* TCP legs must not lose messages in a fault-free storm scenario.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.harness import runner
from repro.harness.scale import Scale

RESULTS_DIR = Path(__file__).parent / "results"
OUT_PATH = RESULTS_DIR / "BENCH_scenario.json"

#: Results accumulated by the tests and flushed once per session.
_report: dict = {}


@pytest.fixture(scope="session", autouse=True)
def scenario_report():
    _report.update(
        schema="repro.bench_scenario/1",
        host={
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
    )
    yield _report
    RESULTS_DIR.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(_report, indent=2) + "\n", encoding="utf-8")


def _run_scenario(experiment_id: str, scale: str, save_result) -> dict:
    run_scale = Scale.named(scale)
    t0 = time.perf_counter()
    result = runner.run(experiment_id, scale=scale)
    wall_s = time.perf_counter() - t0
    save_result(result)
    entry = {
        "scale": run_scale.name,
        "scenario": result.meta["scenario"],
        "wall_clock_s": wall_s,
        "scorecard_headers": list(result.table[0]),
        "scorecard": result.meta["scorecard"],
        "scores": result.meta["scores"],
    }
    _report[experiment_id] = entry
    return entry


def test_scenario_threeway_scorecard(scale, save_result, scenario_report):
    entry = _run_scenario("scenario_threeway", scale, save_result)
    scores = entry["scores"]

    # shape gates (machine-independent)
    for label, score in scores.items():
        assert math.isfinite(score["burst_p99_ms"]), (
            f"{label}: no deliveries during the burst windows — the "
            "scenario never perturbed the run"
        )
    plog = scores["Plog (TCP, acks=all)"]
    assert plog["duplicates"] == 0, (
        f"plog acks=all delivered {plog['duplicates']} duplicates — the "
        "exactly-once guarantee is broken"
    )
    for label in ("R-GMA (TCP)", "Plog (TCP, acks=all)"):
        assert scores[label]["loss_pct"] == 0.0, (
            f"{label}: lost messages in a fault-free storm scenario"
        )


def test_scenario_edge_storm_scorecard(scale, save_result, scenario_report):
    entry = _run_scenario("scenario_edge_storm", scale, save_result)
    scores = entry["scores"]
    for label, score in scores.items():
        assert math.isfinite(score["burst_p99_ms"]), (
            f"{label}: no deliveries during the burst windows"
        )
        assert score["loss_pct"] == 0.0, (
            f"{label}: edge tier lost messages during the alarm storm"
        )
