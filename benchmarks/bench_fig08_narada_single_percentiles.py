"""Fig 8: Narada single-broker percentile of RTT, 500-3000 connections.

Paper shape: curves stack by connection count (more connections -> higher
percentiles) and stay within a few hundred milliseconds at the 100th
percentile.
"""

from benchmarks.conftest import run_experiment


def test_fig8_single_percentiles(benchmark, scale, save_result):
    result = run_experiment(benchmark, "fig8", scale, save_result)
    labels = sorted(result.series, key=int)
    assert len(labels) >= 3

    curves = {
        label: {p.x: p.y for p in result.series[label]} for label in labels
    }
    for label, curve in curves.items():
        values = [curve[p] for p in sorted(curve)]
        assert values == sorted(values), "percentile curves are monotone"

    # Stacking: the largest connection count dominates the smallest at the
    # 99th percentile.
    low, high = labels[0], labels[-1]
    assert curves[high][99.0] > curves[low][99.0]
    # All within the paper's sub-second regime.
    assert curves[high][100.0] < 1000
