"""Fig 11: R-GMA RTT & STDDEV vs connections, single server vs distributed.

Paper shape: RTT in the seconds domain (three orders of magnitude above
Narada); it grows with connections; a single server cannot accept 800
connections (OOM); the distributed deployment is faster at the same load
and reaches 1000+ connections; 99 % of messages within ~4000 ms.
"""

from benchmarks.conftest import run_experiment


def test_fig11_rgma_scaling(benchmark, scale, save_result):
    result = run_experiment(benchmark, "fig11", scale, save_result)
    rtt = {p.x: p.y for p in result.series["RTT"]}
    rtt2 = {p.x: p.y for p in result.series["RTT2"]}

    xs = sorted(rtt)
    # Seconds domain, increasing with load.
    assert 200 < rtt[xs[0]] < 3000
    assert rtt[xs[-1]] > rtt[xs[0]]

    # Single-server OOM wall below 800.
    assert 800 not in rtt
    assert any("OOM" in note for note in result.notes)

    # Distributed reaches 1000 and beats single at overlapping counts.
    assert max(rtt2) >= 1000
    overlap = set(rtt) & set(rtt2)
    assert overlap
    for x in overlap:
        assert rtt2[x] < rtt[x], "distributed R-GMA performs better (§III.F.1)"

    assert any("4000 ms" in note for note in result.notes)
