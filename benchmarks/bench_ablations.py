"""Ablation benches for the design choices DESIGN.md §5 calls out.

Each isolates one mechanism the paper diagnosed and shows the counterfactual.
"""

from benchmarks.conftest import run_experiment


def test_ablation_dbn_routing(benchmark, scale, save_result):
    """Fixing the broadcast flaw removes the wasted inter-broker traffic and
    improves DBN latency (the paper's anticipated fix, §V)."""
    result = run_experiment(benchmark, "ablation_dbn_routing", scale, save_result)
    rows = {row[0]: row for row in result.table[1]}
    flawed = rows["broadcast (v1.1.3)"]
    fixed = rows["routed (fixed)"]
    assert fixed[1] < flawed[1], "routing beats broadcasting on RTT"
    assert fixed[2] < flawed[2] / 2, "routing sends far fewer forwards"


def test_ablation_udp_ack(benchmark, scale, save_result):
    """The ack protocol, not the datagrams, is what makes JMS-over-UDP slow;
    removing it trades latency for unacceptable loss (§III.E.1)."""
    result = run_experiment(benchmark, "ablation_udp_ack", scale, save_result)
    rows = {row[0]: row for row in result.table[1]}
    acked = rows["acked (JMS requires it)"]
    raw = rows["raw (no ack)"]
    assert raw[1] < acked[1] / 2, "raw UDP latency is TCP-like"
    raw_loss = float(raw[2].rstrip("%")) / 100
    acked_loss = float(acked[2].rstrip("%")) / 100
    assert raw_loss > 0.01, "raw UDP loses messages wholesale"
    assert acked_loss < raw_loss / 10, "acking recovers almost everything"


def test_ablation_rgma_mediator(benchmark, scale, save_result):
    """R-GMA's Process Time is middleware cost: zeroing the consumer's
    per-tuple work collapses PT (Fig 15's diagnosis)."""
    result = run_experiment(benchmark, "ablation_rgma_mediator", scale, save_result)
    rows = {row[0]: row for row in result.table[1]}
    modelled_pt = rows["gLite 3.0 (modelled)"][2]
    ablated_pt = rows["zero-cost mediator"][2]
    assert ablated_pt < modelled_pt / 2


def test_ablation_aggregation(benchmark, scale, save_result):
    """Message quantity dominates byte volume (the §IV RMM observation):
    same bytes/s in 1/3 the messages costs only slightly more per message."""
    result = run_experiment(benchmark, "ablation_aggregation", scale, save_result)
    rows = result.table[1]
    small = rows[0]
    big = rows[1]
    assert big[1] < small[1] / 2, "1/3 the message count in the same window"
    # Tripling bytes does not triple RTT: per-message cost dominates.
    assert big[2] < 3 * small[2]
