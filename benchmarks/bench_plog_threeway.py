"""Fig 15 extended: RTT = PRT + PT + SRT for all three middlewares.

Expected ordering: Narada's phases are all short (milliseconds); the plog
sits an order of magnitude above it — its PRT is the produce-ack round trip
and includes the producer's ~50 ms linger — but two orders below R-GMA's
mediated SQL pipeline, whose PT dominates at seconds.
"""

from benchmarks.conftest import run_experiment


def test_fig15_threeway(benchmark, scale, save_result):
    result = run_experiment(benchmark, "fig15_threeway", scale, save_result)
    rows = {row[0]: row[1:] for row in result.table[1]}
    assert set(rows) == {"RGMA", "Narada", "Plog"}

    plog_prt, plog_pt, plog_srt, plog_rtt = rows["Plog"]
    narada_rtt = rows["Narada"][3]
    rgma_rtt = rows["RGMA"][3]

    # Three distinct latency regimes: ms / tens-of-ms / seconds.
    assert narada_rtt < plog_rtt < rgma_rtt
    assert rgma_rtt > 10 * plog_rtt

    # The linger lives in the plog's PRT, so PRT dominates its breakdown;
    # PT (ack-to-arrival) may be small or slightly negative (the ack races
    # the woken fetch) but the phases still sum to the RTT.
    assert plog_prt > plog_srt
    assert abs((plog_prt + plog_pt + plog_srt) - plog_rtt) < 1e-6

    # Each system's series is cumulative over the four phase boundaries.
    for label in ("RGMA", "Narada", "Plog"):
        ys = [p.y for p in sorted(result.series[label], key=lambda p: p.x)]
        assert len(ys) == 4
        assert ys[0] == 0.0

    assert any("linger" in note for note in result.notes)
