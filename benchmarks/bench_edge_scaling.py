"""Machine-readable edge-tier trajectory: pooled fan-in + RTT tails.

Every swept ``(clients, gateways)`` point's RTT percentiles, upstream
connection counts and shed/park counters — against the no-edge direct
baseline — land in ``benchmarks/results/BENCH_edge.json`` (uploaded as a
CI artifact) so the gateway tier's perf trajectory is a reviewable number,
not a claim.

Regression gates are *shape* properties, machine-independent:

* pooled upstream connections must be independent of the client population
  at every gateway count (the pgbouncer-style multiplexing headline);
* edge P99 RTT at the ~10k-client point must stay within a bounded factor
  of direct middleware delivery — the gateway hop is cheap;
* delivery loss must be 0 at every swept point.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.harness import edge_experiments as edge
from repro.harness.scale import Scale

RESULTS_DIR = Path(__file__).parent / "results"
OUT_PATH = RESULTS_DIR / "BENCH_edge.json"

#: Edge P99 may cost at most this factor of direct delivery at ~10k clients.
P99_FACTOR_BOUND = 2.0

#: Results accumulated by the test and flushed once per session.
_report: dict = {}


@pytest.fixture(scope="session", autouse=True)
def edge_report():
    _report.update(
        schema="repro.bench_edge/1",
        host={
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
    )
    yield _report
    RESULTS_DIR.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(_report, indent=2) + "\n", encoding="utf-8")


def _point_entry(run: edge.EdgeRunResult) -> dict:
    return {
        "rtt_p50_ms": run.rtt_p50_ms,
        "rtt_p99_ms": run.rtt_p99_ms,
        "loss_rate": run.loss_rate,
        "sent": run.sent,
        "received": run.received,
        "pooled_connections": run.pooled_connections,
        "baseline_connections": run.baseline_connections,
        "long_polls_parked": run.long_polls_parked,
        "polls_shed": run.polls_shed,
        "polls_timed_out": run.polls_timed_out,
    }


def test_edge_scaling_trajectory(scale, save_result, edge_report):
    run_scale = Scale.named(scale)
    points = (
        edge.EDGE_SWEEP_FULL if run_scale.name == "full" else edge.EDGE_SWEEP
    )
    jobs = min(os.cpu_count() or 1, len(points))

    t0 = time.perf_counter()
    sweep = edge.run_edge_sweep(points, "narada", scale=run_scale, jobs=jobs)
    direct = edge.direct_point("narada", scale=run_scale)
    sweep_s = time.perf_counter() - t0

    result = edge.edge_scaling(sweep, direct, "narada")
    save_result(result)

    edge_report["edge"] = {
        "scale": run_scale.name,
        "middleware": "narada",
        "points_swept": [list(p) for p in points],
        "sweep_wall_clock_s": sweep_s,
        "direct": {
            "rtt_p50_ms": direct.rtt_p50_ms,
            "rtt_p99_ms": direct.rtt_p99_ms,
            "loss_rate": direct.loss_rate,
        },
        "points": {
            f"{c}x{g}": _point_entry(sweep[(c, g)]) for c, g in points
        },
        "p99_factor_bound": P99_FACTOR_BOUND,
    }

    # shape gates (machine-independent)
    by_gateways: dict[int, list[edge.EdgeRunResult]] = {}
    for (c, g), run in sweep.items():
        by_gateways.setdefault(g, []).append(run)
    for g, runs in by_gateways.items():
        pooled = {r.pooled_connections for r in runs}
        assert len(pooled) == 1, (
            f"pooled connections vary with client count at {g} gateway(s): "
            f"{sorted(pooled)} — the multiplexing headline is broken"
        )
    max_clients = max(c for c, _ in points)
    max_pooled = max(r.pooled_connections for r in sweep.values())
    assert max_pooled < max_clients / 100, (
        f"{max_pooled} upstream connections for {max_clients} clients: "
        "fan-in is not being pooled"
    )

    sample = min(
        sweep.values(), key=lambda r: (abs(r.n_clients - 10_000), r.n_gateways)
    )
    factor = sample.rtt_p99_ms / direct.rtt_p99_ms
    edge_report["edge"]["p99_factor_at_10k"] = factor
    assert factor <= P99_FACTOR_BOUND, (
        f"edge P99 {sample.rtt_p99_ms:.1f} ms at {sample.n_clients} clients "
        f"is {factor:.2f}x direct ({direct.rtt_p99_ms:.1f} ms), "
        f"over the {P99_FACTOR_BOUND}x bound"
    )

    for (c, g), run in sweep.items():
        assert run.loss_rate == 0.0, f"lost messages at {c} clients x{g} gateways"
