"""Fig 7: Narada RTT & STDDEV vs concurrent connections, single vs DBN.

Paper shape: a smooth increase of RTT with connection count; the single
broker cannot accept 4000 connections (out of memory creating threads); the
DBN sustains more connections but its RTT is not better than the single
broker's at comparable load (the v1.1.3 broadcast deficiency); 99+% of
messages arrive within 100 ms.
"""

from benchmarks.conftest import run_experiment


def test_fig7_scaling(benchmark, scale, save_result):
    result = run_experiment(benchmark, "fig7", scale, save_result)
    rtt = {p.x: p.y for p in result.series["RTT"]}
    rtt2 = {p.x: p.y for p in result.series["RTT2"]}
    stddev = {p.x: p.y for p in result.series["STDDEV"]}

    # Smooth increase with connections (paper Fig 7).
    xs = sorted(rtt)
    assert [rtt[x] for x in xs] == sorted(rtt[x] for x in xs)
    assert rtt[xs[-1]] > 2 * rtt[xs[0]]
    assert stddev[xs[-1]] > stddev[xs[0]]

    # Single broker milliseconds domain, not seconds.
    assert all(v < 100 for v in rtt.values())

    # The OOM wall: 4000 must NOT appear as a single-broker point, and the
    # note must record the refusal.
    assert 4000 not in rtt
    assert any("OOM at 4000" in note for note in result.notes)

    # DBN reaches 4000 connections; its RTT is in the same range or higher
    # than the single broker's at overlapping counts (not dramatically
    # better — the broadcast flaw).
    assert max(rtt2) >= 4000
    overlap = set(rtt) & set(rtt2)
    assert overlap, "single and DBN share connection counts"
    mean_ratio = sum(rtt2[x] / rtt[x] for x in overlap) / len(overlap)
    assert mean_ratio > 0.8, "DBN is not dramatically faster (paper §III.E.2)"

    # 99.x% within 100 ms headline.
    assert any("within 100 ms" in note for note in result.notes)
