"""Extension ablations: the trade-offs the paper argued but did not measure.

* §III.D — "Why not Web Services": SOAP serialization vs native JMS.
* §III.F — "We did not use HTTPS because of the encryption overhead".
"""

from benchmarks.conftest import run_experiment


def test_ablation_web_services(benchmark, scale, save_result):
    result = run_experiment(benchmark, "ablation_web_services", scale, save_result)
    rows = {row[0]: row for row in result.table[1]}
    soap_e2e = rows["SOAP over HTTP via proxy"][2]
    native_e2e = rows["native JMS"][2]
    assert soap_e2e > 2 * native_e2e, "SOAP delivery costs several times native"
    assert any("expands" in note for note in result.notes)


def test_ablation_rgma_legacy_api(benchmark, scale, save_result):
    """§III.F.3: the old Stream Producer/Archiver API outperforms the new
    PP/Consumer pipeline by an order of magnitude — the [11] discrepancy."""
    result = run_experiment(
        benchmark, "ablation_rgma_legacy_api", scale, save_result
    )
    rows = result.table[1]
    old_ms = rows[0][1]
    new_ms = rows[1][1]
    assert old_ms < new_ms / 5
    assert rows[0][2] > 0  # the legacy path actually delivered tuples


def test_ablation_clock_skew(benchmark, scale, save_result):
    """Unsynchronised clocks destroy cross-node millisecond RTTs — the
    methodological reason for the paper's same-node measurement design."""
    result = run_experiment(benchmark, "ablation_clock_skew", scale, save_result)
    rows = result.table[1]
    same_node_err = rows[0][2]
    ntp_err = rows[1][2]
    drifted_err = rows[2][2]
    assert same_node_err == 0.0
    assert ntp_err < 2.0, "NTP residual stays in the low-millisecond range"
    assert drifted_err > 10 * ntp_err, "drift swamps the measurement"
    drifted_negative = float(rows[2][3].rstrip("%"))
    assert drifted_negative > 10, "many apparent RTTs go negative"


def test_ablation_rgma_https(benchmark, scale, save_result):
    result = run_experiment(benchmark, "ablation_rgma_https", scale, save_result)
    rows = {row[0]: row for row in result.table[1]}
    http = rows["HTTP (paper's choice)"]
    https = rows["HTTPS"]
    # The handshake dominates: producer setup time multiplies...
    assert https[1] > 2 * http[1], "TLS handshake inflates producer setup"
    assert https[1] - http[1] > 80, "two ~45 ms RSA operations per connect"
    # ...and the server pays asymmetric-crypto CPU per connection.
    assert https[2] > http[2] + 1.0, "50 handshakes cost seconds of CPU"
    # Steady-state RTT stays the same order of magnitude (context only).
    assert https[3] < 3 * http[3]
