"""Fig 4: percentile of RTT (95-100 %) for the comparison tests.

Paper shape: TCP/NIO percentile curves stay flat and low; UDP's tail climbs
to hundreds of milliseconds (retransmission timeouts); Triple sits above
TCP.
"""

from benchmarks.conftest import run_experiment


def test_fig4_percentiles(benchmark, scale, save_result):
    result = run_experiment(benchmark, "fig4", scale, save_result)

    def curve(label):
        return {p.x: p.y for p in result.series[label]}

    tcp, udp, nio, triple = (curve(n) for n in ("TCP", "UDP", "NIO", "Triple"))

    # Curves are monotone in percentile.
    for c in (tcp, udp, nio, triple):
        values = [c[p] for p in sorted(c)]
        assert values == sorted(values)

    # TCP's 100th percentile stays within tens of ms; UDP's reaches the
    # retransmission-timeout regime (paper: up to ~250 ms).
    assert tcp[100.0] < 60
    assert udp[100.0] > 100
    assert udp[99.0] > tcp[99.0]
    assert triple[95.0] > tcp[95.0]
