"""Durable delivery parity under the gauntlet, as a machine-readable gate.

``chaos_durability`` runs the Narada durable-subscription leg and the plog
idempotent leg (R-GMA TCP as the control) through the same
``durability_gauntlet`` plan — broker crash + consumer crash + partition —
and the headline is a parity claim: **0.00 % loss and 0 duplicates on both
broker paths**.  This bench re-runs it, writes every leg's delivery and
recovery counters to ``benchmarks/results/BENCH_durability.json`` (a CI
artifact), and gates the shape properties:

* every leg delivers with zero loss *and* zero duplicates;
* the faults were real — the durable receivers reconnected and the plog
  re-elected leaders — so the zeros are recovery, not a quiet run;
* the plog leg's exactly-once bookkeeping holds: no acknowledged record
  lost, post-rebalance redeliveries absorbed by the sink index.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

import pytest

from benchmarks.conftest import run_experiment

RESULTS_DIR = Path(__file__).parent / "results"
OUT_PATH = RESULTS_DIR / "BENCH_durability.json"

NARADA_LEG = "Narada durable (TCP, retry)"
RGMA_LEG = "R-GMA (TCP)"
PLOG_LEG = "Plog idempotent (TCP, RF=2, acks=all)"

#: Results accumulated by the test and flushed once per session.
_report: dict = {}


@pytest.fixture(scope="session", autouse=True)
def durability_report():
    _report.update(
        schema="repro.bench_durability/1",
        host={
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
    )
    yield _report
    RESULTS_DIR.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(_report, indent=2) + "\n", encoding="utf-8")


def test_chaos_durability(benchmark, scale, save_result, durability_report):
    result = run_experiment(benchmark, "chaos_durability", scale, save_result)
    runs = result.meta["runs"]
    narada = runs[NARADA_LEG]
    rgma = runs[RGMA_LEG]
    plog = runs[PLOG_LEG]

    durability_report["chaos_durability"] = {
        "scale": scale,
        "fault_plan": result.meta["fault_plan"],
        "legs": {
            NARADA_LEG: {
                "sent": narada.sent,
                "received": narada.received,
                "loss_rate": narada.loss_rate,
                "duplicates": narada.duplicates,
                "redeliveries": narada.redeliveries,
                "messages_replayed": narada.messages_replayed,
                "receiver_reconnects": narada.receiver_reconnects,
            },
            RGMA_LEG: {
                "sent": rgma.sent,
                "received": rgma.received,
                "loss_rate": rgma.loss_rate,
                "duplicates": rgma.duplicates,
            },
            PLOG_LEG: {
                "sent": plog.sent,
                "received": plog.received,
                "loss_rate": plog.loss_rate,
                "duplicates": plog.duplicates,
                "redeliveries": plog.redeliveries,
                "duplicate_batches": plog.duplicate_batches,
                "fenced_commits": plog.fenced_commits,
                "elections": plog.elections,
                "coordinator_elections": plog.coordinator_elections,
                "acked": plog.acked,
                "acked_lost": plog.acked_lost,
            },
        },
    }

    # The parity headline: zero loss AND zero duplicates on every leg.
    for label, run in runs.items():
        assert run.sent > 0, f"{label} published nothing"
        assert run.loss_rate == 0.0, (
            f"{label} lost {run.sent - run.received} of {run.sent} messages"
        )
        assert run.duplicates == 0, (
            f"{label} counted {run.duplicates} duplicate deliveries"
        )

    # The zeros must come from recovery, not from a fault-free run: the
    # broker crash forced the supervised durable receivers to reconnect
    # and re-subscribe, and forced plog leader (re-)elections.
    assert narada.receiver_reconnects > 0, (
        "no supervised reconnects: the broker crash never hit the receivers"
    )
    assert plog.elections > 0, "no leader elections: the broker crash was a no-op"

    # Plog exactly-once bookkeeping: the acks=all + RF=2 contract held and
    # the consumer-crash rebalance was absorbed by the shared sink index.
    assert plog.acked > 0
    assert plog.acked_lost == 0, (
        f"{plog.acked_lost} acknowledged records lost across failover"
    )
    assert plog.redeliveries > 0, (
        "no post-rebalance redeliveries absorbed: the consumer crash "
        "never exercised the sink dedup"
    )
