"""Fig 14: R-GMA distributed-network percentile of RTT, 400-1000 conns.

Paper shape: the distributed deployment holds its percentile curves in the
2500-4500 ms band even at 1000 connections — well below the single server's
blow-up trajectory.
"""

from benchmarks.conftest import run_experiment


def test_fig14_rgma_distributed_percentiles(benchmark, scale, save_result):
    result = run_experiment(benchmark, "fig14", scale, save_result)
    labels = sorted(result.series, key=int)
    assert int(labels[-1]) >= 1000
    curves = {
        label: {p.x: p.y for p in result.series[label]} for label in labels
    }
    for curve in curves.values():
        values = [curve[p] for p in sorted(curve)]
        assert values == sorted(values)
    # Bounded even at 1000 connections (no blow-up).
    assert curves[labels[-1]][100.0] < 10_000
