"""Fig 15: RTT decomposition — RTT = PRT + PT + SRT.

Paper shape: R-GMA's Publishing and Subscribing Response Times are short but
its Process Time is very long (the delay lives in the Primary Producer and
Consumer); all three Narada phases are very short.
"""

from benchmarks.conftest import run_experiment


def test_fig15_decomposition(benchmark, scale, save_result):
    result = run_experiment(benchmark, "fig15", scale, save_result)
    assert result.table is not None
    rows = {row[0]: row[1:] for row in result.table[1]}

    rgma_prt, rgma_pt, rgma_srt, rgma_rtt = rows["RGMA"]
    narada_prt, narada_pt, narada_srt, narada_rtt = rows["Narada"]

    # R-GMA: PT dominates both response times.
    assert rgma_pt > 2 * rgma_prt
    assert rgma_pt > 2 * rgma_srt
    # Narada: everything short (single-digit ms in total).
    assert narada_rtt < 50
    # Orders of magnitude apart.
    assert rgma_rtt > 50 * narada_rtt
    # Identity RTT = PRT + PT + SRT holds by construction.
    assert abs(rgma_rtt - (rgma_prt + rgma_pt + rgma_srt)) < 1e-6
