"""Table II + Fig 3: the six Narada comparison tests (RTT and STDDEV).

Paper shape: TCP is the fastest and most stable; NIO is close behind; UDP
(JMS-acked) is several times slower with a large deviation; tripling the
payload slows delivery; 800-vs-80 connections at equal throughput are
comparable.
"""

from benchmarks.conftest import run_experiment


def test_fig3_comparison(benchmark, scale, save_result):
    result = run_experiment(benchmark, "table2_fig3", scale, save_result)
    assert result.table is not None
    rows = {row[0]: row for row in result.table[1]}

    tcp_rtt, tcp_std = rows["TCP"][1], rows["TCP"][2]
    udp_rtt = rows["UDP"][1]
    nio_rtt = rows["NIO"][1]
    triple_rtt = rows["Triple"][1]
    c80_rtt = rows["80"][1]

    # Who wins and by roughly what factor (paper Fig 3).
    assert tcp_rtt < 10, "TCP RTT is a few milliseconds"
    assert udp_rtt > 2 * tcp_rtt, "JMS-over-UDP is several times slower"
    assert rows["UDP"][2] > 5 * tcp_std, "UDP deviation blows up"
    assert tcp_rtt < nio_rtt < udp_rtt, "NIO sits between TCP and UDP"
    assert triple_rtt > tcp_rtt, "large payloads slow Narada down"
    assert abs(c80_rtt - tcp_rtt) < tcp_rtt, "80 conns at 10x rate ~ comparable"
