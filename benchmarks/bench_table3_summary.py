"""Table III: the qualitative comparison, derived from measurements.

Paper verdicts: R-GMA = Average / Average / Very good;
Narada = Very good / Very good / Average.
"""

from benchmarks.conftest import run_experiment


def test_table3(benchmark, scale, save_result):
    result = run_experiment(benchmark, "table3", scale, save_result)
    assert result.table is not None
    verdicts = {row[0]: row[1:] for row in result.table[1]}

    assert verdicts["R-GMA"][0] == "Average"      # real-time performance
    assert verdicts["R-GMA"][1] == "Average"      # connections & throughput
    assert verdicts["R-GMA"][2] == "Very good"    # scalability

    assert verdicts["Narada"][0] == "Very good"
    assert verdicts["Narada"][1] == "Very good"
    assert verdicts["Narada"][2] == "Average"

    # The underlying measurements are attached for inspection.
    narada = result.meta["narada"]
    rgma = result.meta["rgma"]
    assert narada.rtt_ms_light < 50
    assert rgma.rtt_ms_light > 200
    assert narada.max_connections_single > rgma.max_connections_single


def test_table3_extended(benchmark, scale, save_result):
    result = run_experiment(benchmark, "table3_extended", scale, save_result)
    rows = {row[0]: row[1:] for row in result.table[1]}
    # The original two verdicts are untouched; the plog adds a third row.
    assert set(rows) == {"R-GMA", "Narada", "Partitioned log"}

    plog = result.meta["plog"]
    narada = result.meta["narada"]
    # The plog's single-broker compliance wall is past 10,000 connections —
    # beyond both measured systems — at a light-load RTT that is linger-
    # bound (~50 ms), slower than Narada but far inside the §I deadline.
    assert plog.max_connections_single >= 10000
    assert plog.max_connections_single > narada.max_connections_single
    assert 40 < plog.rtt_ms_light < 100
