"""Table III: the qualitative comparison, derived from measurements.

Paper verdicts: R-GMA = Average / Average / Very good;
Narada = Very good / Very good / Average.
"""

from benchmarks.conftest import run_experiment


def test_table3(benchmark, scale, save_result):
    result = run_experiment(benchmark, "table3", scale, save_result)
    assert result.table is not None
    verdicts = {row[0]: row[1:] for row in result.table[1]}

    assert verdicts["R-GMA"][0] == "Average"      # real-time performance
    assert verdicts["R-GMA"][1] == "Average"      # connections & throughput
    assert verdicts["R-GMA"][2] == "Very good"    # scalability

    assert verdicts["Narada"][0] == "Very good"
    assert verdicts["Narada"][1] == "Very good"
    assert verdicts["Narada"][2] == "Average"

    # The underlying measurements are attached for inspection.
    narada = result.meta["narada"]
    rgma = result.meta["rgma"]
    assert narada.rtt_ms_light < 50
    assert rgma.rtt_ms_light > 200
    assert narada.max_connections_single > rgma.max_connections_single
