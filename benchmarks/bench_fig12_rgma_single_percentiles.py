"""Fig 12: R-GMA single-server percentile of RTT, 100-600 connections.

Paper shape: percentile curves in the 2000-7000 ms band, stacking with
connection count.
"""

from benchmarks.conftest import run_experiment


def test_fig12_rgma_single_percentiles(benchmark, scale, save_result):
    result = run_experiment(benchmark, "fig12", scale, save_result)
    labels = sorted(result.series, key=int)
    assert len(labels) >= 3
    curves = {
        label: {p.x: p.y for p in result.series[label]} for label in labels
    }
    for curve in curves.values():
        values = [curve[p] for p in sorted(curve)]
        assert values == sorted(values)
    low, high = labels[0], labels[-1]
    assert curves[high][99.0] > curves[low][99.0]
    # Seconds domain (paper's fig 12 y-axis spans 2000-7000 ms).
    assert curves[high][99.0] > 700
    assert curves[high][100.0] < 20_000
