"""Machine-readable fleet trajectory: million-publisher sweeps + speedup.

Tracks the vectorized cohort fleet engine the way ``bench_sweep_parallel``
tracks the kernel: every swept publisher count's throughput (events/s) and
wall-clock per publisher — aggregate mode vs the per-process exactness
reference — land in ``benchmarks/results/BENCH_fleet.json`` (uploaded as a
CI artifact) so the engine's perf trajectory is a reviewable number, not a
claim.

Regression gates, machine-independent:

* aggregate mode must be >= 100x cheaper per publisher than per-process at
  the largest common point (the ISSUE's acceptance floor; measured ~1000x);
* aggregate vs per-process must agree on message/loss/duplicate counts
  exactly and on P50/P95/P99 within tolerance (``fleet_scaling`` raises
  otherwise), including with a zoomed-out cohort;
* per-publisher cost must improve monotonically (within noise) as cohort
  size grows, up to the plateau — the batching actually amortizes.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.harness import fleet_experiments as fleet
from repro.harness.scale import Scale
from repro.powergrid.fleet_engine import FLEET_MIDDLEWARES, run_fleet_point

RESULTS_DIR = Path(__file__).parent / "results"
OUT_PATH = RESULTS_DIR / "BENCH_fleet.json"

#: The acceptance floor for aggregate-vs-process per-publisher cost.
SPEEDUP_FLOOR = 100.0

#: Cohort widths for the shape gate (doublings up to the default).
SHAPE_SIZES = (128, 512, 2048, 8192)
SHAPE_N = 16_384

#: Results accumulated by the tests and flushed once per session.
_report: dict = {}


@pytest.fixture(scope="session", autouse=True)
def fleet_report():
    _report.update(
        schema="repro.bench_fleet/1",
        host={
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
    )
    yield _report
    RESULTS_DIR.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(_report, indent=2) + "\n", encoding="utf-8")


def _point_entry(o) -> dict:
    return {
        "published": o.published,
        "lost": o.lost,
        "duplicates": o.duplicates,
        "p50_ms": o.p50_ms,
        "p99_ms": o.p99_ms,
        "wall_s": o.wall_s,
        "wall_per_publisher_us": o.wall_per_publisher_s * 1e6,
        "events_per_s": o.events_per_s,
        "kernel_events": o.events_scheduled,
        "cohort_ticks": o.ticks,
    }


def test_fleet_scaling_trajectory(scale, save_result, fleet_report):
    run_scale = Scale.named(scale)
    jobs = min(os.cpu_count() or 1, len(fleet.FLEET_SWEEP))

    t0 = time.perf_counter()
    aggregate = {
        mw: fleet.run_fleet_sweep(
            fleet.FLEET_SWEEP, mw, "aggregate", scale=run_scale, jobs=jobs
        )
        for mw in FLEET_MIDDLEWARES
    }
    process = {
        mw: fleet.run_fleet_sweep(
            fleet.PROCESS_SWEEP, mw, "process", scale=run_scale, jobs=jobs
        )
        for mw in FLEET_MIDDLEWARES
    }
    sweep_s = time.perf_counter() - t0

    # Raises on any aggregate-vs-process or zoom disagreement: the CI gate.
    result = fleet.fleet_scaling(aggregate, process, scale=run_scale)
    save_result(result)

    speedups = result.meta["speedup_per_publisher"]
    fleet_report["fleet"] = {
        "scale": run_scale.name,
        "publisher_counts": list(fleet.FLEET_SWEEP),
        "process_counts": list(fleet.PROCESS_SWEEP),
        "cohort_size": fleet.COHORT_SIZE,
        "sweep_wall_clock_s": sweep_s,
        "speedup_per_publisher": speedups,
        "speedup_floor": SPEEDUP_FLOOR,
        "agreement": {
            mw: {str(n): ok for n, ok in per_mw.items()}
            for mw, per_mw in result.meta["agreement"].items()
        },
        "zoom_ok": result.meta["zoom_ok"],
        "points": {
            mw: {
                "aggregate": {
                    str(n): _point_entry(o) for n, o in aggregate[mw].items()
                },
                "process": {
                    str(n): _point_entry(o) for n, o in process[mw].items()
                },
            }
            for mw in FLEET_MIDDLEWARES
        },
    }

    for mw in FLEET_MIDDLEWARES:
        assert speedups[mw] >= SPEEDUP_FLOOR, (
            f"{mw}: aggregate mode only {speedups[mw]:.0f}x cheaper per "
            f"publisher than per-process (floor {SPEEDUP_FLOOR:.0f}x)"
        )
        # The million-publisher point actually ran, at sane throughput.
        biggest = aggregate[mw][max(fleet.FLEET_SWEEP)]
        assert biggest.published > 0
        assert biggest.events_per_s > 100_000


def test_cohort_size_shape_gate(fleet_report):
    """Per-publisher wall-clock must improve (or plateau) as cohorts widen:
    each doubling may never *regress* beyond noise, and the widest cohort
    must beat the narrowest outright — the batching amortizes."""
    smoke = Scale.smoke()
    walls: dict[int, float] = {}
    for size in SHAPE_SIZES:
        best = float("inf")
        for _ in range(3):
            out = run_fleet_point(
                "narada", SHAPE_N, smoke, mode="aggregate", cohort_size=size
            )
            best = min(best, out.wall_s)
        walls[size] = best / SHAPE_N
    fleet_report["cohort_shape"] = {
        "n_publishers": SHAPE_N,
        "wall_per_publisher_us": {
            str(s): w * 1e6 for s, w in walls.items()
        },
    }
    for narrow, wide in zip(SHAPE_SIZES, SHAPE_SIZES[1:]):
        assert walls[wide] <= walls[narrow] * 1.10, (
            f"cohort {wide} is slower per publisher than {narrow} "
            f"({walls[wide]*1e6:.1f}us vs {walls[narrow]*1e6:.1f}us)"
        )
    assert walls[SHAPE_SIZES[-1]] < walls[SHAPE_SIZES[0]]
