"""Fig 10: R-GMA Primary + Secondary Producer percentiles, 50-200 conns.

Paper shape: "The delays were up to 35 seconds" — every tuple routed through
the Secondary Producer carries its deliberate 30 s republish delay plus the
normal pipeline latency.
"""

from benchmarks.conftest import run_experiment


def test_fig10_secondary_producer(benchmark, scale, save_result):
    result = run_experiment(benchmark, "fig10", scale, save_result)
    labels = sorted(result.series, key=int)
    assert labels, "sweep produced series"
    for label in labels:
        curve = {p.x: p.y for p in result.series[label]}
        values = [curve[p] for p in sorted(curve)]
        assert values == sorted(values)
        # Seconds domain: everything between 30 and ~40 s.
        assert 29.0 < curve[95.0] < 40.0
        assert curve[100.0] < 45.0
