"""Partitioned log: RTT and §I SLA compliance vs connections.

The question §V leaves open: does *any* pub/sub architecture satisfy the
grid requirement at 10,000+ generators?  Expected shape: the single plog
broker sails straight past Narada's 4000-connection OOM wall with a flat,
fixed-size thread pool; RTT stays linger-dominated (tens to low hundreds of
ms — far inside the 5 s deadline) and loss stays zero, so every swept load
is SLA-PASS.  Spreading partitions over four brokers carries 16,000.
"""

from benchmarks.conftest import run_experiment


def test_plog_scaling(benchmark, scale, save_result):
    result = run_experiment(benchmark, "plog_scaling", scale, save_result)
    rtt = {p.x: p.y for p in result.series["RTT"]}
    rtt2 = {p.x: p.y for p in result.series["RTT2"]}

    # No OOM wall: every single-broker sweep point survives, including the
    # counts Narada refuses (its wall is at ~3600 threads, paper §III.E.2).
    assert 4000 in rtt and 8000 in rtt and 12000 in rtt
    assert not any("OOM" in note for note in result.notes)

    # Latency is batching-dominated, not connection-dominated: even at 12k
    # connections the mean RTT stays orders of magnitude inside the 5 s
    # deadline (vs the linger floor of ~50 ms at light load).
    assert all(40 < v < 1000 for v in rtt.values())
    assert rtt[12000] < 10 * rtt[min(rtt)]

    # The headline: §I soft real-time compliance at >= 10,000 connections.
    verdicts = {row[1]: row[6] for row in result.table[1]}
    assert all(v == "PASS" for v in verdicts.values())
    assert any(n >= 10000 and verdicts[n] == "PASS" for n in verdicts)

    # Four-broker spread reaches 16,000 connections.
    assert max(rtt2) >= 16000
    assert all(v < 1000 for v in rtt2.values())

    # The structural story is recorded: fixed thread pool, no thread wall.
    assert any("no" in note and "thread" in note for note in result.notes)
