"""Telemetry: traced fig15 with exported artefacts + estimator throughput.

The traced bench doubles as the artefact generator: it leaves a validated
sample JSONL trace and the metrics JSON in ``benchmarks/results/`` (CI
uploads that directory), proving the whole span pipeline — middleware
hooks, record-book binding, JSONL export, schema validation — end to end
at bench scale.
"""

import numpy as np

from benchmarks.conftest import RESULTS_DIR
from repro.harness import runner
from repro.telemetry import Histogram, Telemetry
from repro.telemetry.context import session
from repro.telemetry.exporters import (
    validate_trace_file,
    write_metrics_json,
    write_trace_jsonl,
)


def test_fig15_traced_writes_valid_artifacts(benchmark, scale):
    RESULTS_DIR.mkdir(exist_ok=True)
    sessions = []

    def traced():
        tel = Telemetry(f"bench fig15 [{scale}]")
        sessions.append(tel)
        with session(tel):
            return runner.run("fig15", scale=scale)

    result = benchmark.pedantic(traced, rounds=1, iterations=1)
    tel = sessions[-1]

    trace_path = RESULTS_DIR / "trace_sample.jsonl"
    metrics_path = RESULTS_DIR / "telemetry_metrics.json"
    n_spans = write_trace_jsonl(tel, str(trace_path))
    write_metrics_json(tel, str(metrics_path))

    summary = validate_trace_file(str(trace_path))
    assert summary["spans"] == n_spans > 0
    assert summary["middlewares"] == ["narada", "rgma"]
    assert summary["complete"] > 0

    # The traced run reproduces the paper shape (PT dominates R-GMA).
    rows = {row[0]: row[1:] for row in result.table[1]}
    assert rows["RGMA"][1] > 2 * rows["RGMA"][0]

    # Every broker-side hook fired: interior phases flow through to disk.
    assert tel.metrics.counter("narada", "broker1", "span.broker_in").value > 0
    assert (
        tel.metrics.counter("rgma", "harness", "messages_delivered").value > 0
    )


def test_histogram_observe_throughput(benchmark):
    """Streaming cost of one histogram observation (both estimators)."""
    xs = np.random.default_rng(7).lognormal(3.0, 1.2, 20_000)

    def fill():
        h = Histogram()
        for x in xs:
            h.observe(float(x))
        return h

    h = benchmark(fill)
    assert h.n == xs.size
    exact = float(np.percentile(xs, 99))
    assert abs(h.quantile(0.99) - exact) / exact < 0.25
