"""In-text loss rates (§III.E.1 and §III.F).

Paper: UDP 0.06 %, UDP CLI 0.03 %, zero for every TCP-family test; R-GMA
0.17 % when producers publish without the warm-up wait, zero with it.
"""

from benchmarks.conftest import run_experiment


def _parse_rate(cell: str) -> float:
    return float(cell.rstrip("%")) / 100.0


def test_losses(benchmark, scale, save_result):
    result = run_experiment(benchmark, "losses", scale, save_result)
    assert result.table is not None
    rows = {row[0]: row for row in result.table[1]}

    # TCP-family: zero loss.
    for name in ("TCP", "NIO", "Triple", "80"):
        assert _parse_rate(rows[name][3]) == 0.0

    # UDP-family: small but (statistically) non-zero; bounded well under 1%.
    for name in ("UDP", "UDP CLI"):
        assert _parse_rate(rows[name][3]) < 0.01

    # R-GMA: loss without warm-up, none with.
    assert _parse_rate(rows["R-GMA no warm-up"][3]) > 0.0
    assert _parse_rate(rows["R-GMA 10-20 s warm-up"][3]) == 0.0
