"""Partitioned log single broker: percentile of RTT per connection count.

The Fig 8 analogue for the commit log.  Expected shape: tails flatten out
instead of exploding with load — fetch batching amortises the per-message
broker work that grows per-connection in Narada, so the p95→p100 spread
stays bounded even at 12,000 connections.
"""

from benchmarks.conftest import run_experiment


def test_plog_percentiles(benchmark, scale, save_result):
    result = run_experiment(benchmark, "plog_percentiles", scale, save_result)

    assert result.series, "every non-OOM sweep point contributes a curve"
    for label, points in result.series.items():
        values = [p.y for p in sorted(points, key=lambda p: p.x)]
        # Monotone by construction (percentiles), and the whole tail —
        # including the p100 maximum — stays inside the 5 s deadline.
        assert values == sorted(values)
        assert values[-1] < 5000, f"{label}: p100 {values[-1]:.0f} ms"

    # Curves exist past the Narada wall.
    assert any(int(label) >= 8000 for label in result.series)
