"""Micro-benchmarks of the library's hot paths.

These are real timing benchmarks (multiple rounds), not experiment
reproductions: they track the simulation kernel's event throughput, selector
matching, SQL parsing and store operations — the costs that bound how fast
the paper-scale experiments run.
"""

import pytest

from repro.jms import Message, Selector
from repro.rgma.sql import parse_sql, render_insert
from repro.sim import Simulator, Store


def test_kernel_event_throughput(benchmark):
    """Schedule+process 10k timeout events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.timeout(i * 0.001)
        sim.run()
        return sim.now

    result = benchmark(run)
    assert result == pytest.approx(9.999)


def test_process_switch_throughput(benchmark):
    """A ping-pong pair of processes switching 2k times."""

    def run():
        sim = Simulator()
        store_a, store_b = Store(sim), Store(sim)

        def ping():
            for _ in range(1000):
                yield store_a.put("x")
                yield store_b.get()

        def pong():
            for _ in range(1000):
                yield store_a.get()
                yield store_b.put("y")

        sim.process(ping())
        sim.process(pong())
        sim.run()
        return True

    assert benchmark(run)


def test_selector_matching_speed(benchmark):
    """The broker's per-message hot path: one compiled selector match."""
    selector = Selector("id >= 100 AND id < 10000 AND site IN ('uk', 'fr')")
    message = Message()
    message.set_property("id", 5432)
    message.set_property("site", "uk")

    result = benchmark(selector.matches, message)
    assert result is True


def test_selector_compile_speed(benchmark):
    text = "a + b * 2 BETWEEN 10 AND 99 OR name LIKE 'gen%' AND flag = TRUE"
    selector = benchmark(Selector, text)
    assert selector.identifiers == {"a", "b", "name", "flag"}


def test_sql_insert_parse_speed(benchmark):
    """The PP servlet's per-insert hot path."""
    row = {"genid": 1, "dval1": 2.5, "sval1": "site-a", "ival1": 3}
    sql = render_insert("gridmon", row)
    stmt = benchmark(parse_sql, sql)
    assert stmt.table == "gridmon"


def test_store_put_get_speed(benchmark):
    def run():
        sim = Simulator()
        store = Store(sim)
        for i in range(1000):
            store.put_nowait(i)
        total = 0
        for _ in range(1000):
            total += store.get_nowait()
        return total

    assert benchmark(run) == sum(range(1000))
