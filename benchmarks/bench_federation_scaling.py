"""Machine-readable federation trajectory: per-link traffic + RTT tails.

Tracks the federation subsystem the way ``bench_sweep_parallel`` tracks the
kernel: every swept broker count's per-link message counts and delivery RTT
percentiles — routed tree vs broadcast DBN — land in
``benchmarks/results/BENCH_federation.json`` (uploaded as a CI artifact) so
the subsystem's perf trajectory is a reviewable number, not a claim.

Regression gates are *shape* properties, machine-independent:

* routed per-link traffic must grow strictly slower than broadcast across
  the sweep (the topic-aware-routing headline);
* broadcast growth must be ~linear in broker count (the v1.1.3 DBN model);
* routed delivery loss must be 0 at every swept scale — the traffic saving
  is not paid in delivery guarantees.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.harness import federation_experiments as fed
from repro.harness.scale import Scale

RESULTS_DIR = Path(__file__).parent / "results"
OUT_PATH = RESULTS_DIR / "BENCH_federation.json"

#: Results accumulated by the test and flushed once per session.
_report: dict = {}


@pytest.fixture(scope="session", autouse=True)
def federation_report():
    _report.update(
        schema="repro.bench_federation/1",
        host={
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
    )
    yield _report
    RESULTS_DIR.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(_report, indent=2) + "\n", encoding="utf-8")


def _leg_entry(run: fed.FederationRunResult) -> dict:
    return {
        "per_link_mean": run.per_link_mean,
        "per_link_max": run.per_link_max,
        "rtt_p50_ms": run.rtt_p50_ms,
        "rtt_p99_ms": run.rtt_p99_ms,
        "loss_rate": run.loss_rate,
        "sent": run.sent,
        "received": run.received,
    }


def test_federation_scaling_trajectory(scale, save_result, federation_report):
    run_scale = Scale.named(scale)
    counts = (
        fed.FEDERATION_SWEEP_FULL
        if run_scale.name == "full"
        else fed.FEDERATION_SWEEP
    )
    jobs = min(os.cpu_count() or 1, len(counts))

    t0 = time.perf_counter()
    routed = fed.run_federation_sweep(counts, "routed", scale=run_scale, jobs=jobs)
    broadcast = fed.run_federation_sweep(
        counts, "broadcast", scale=run_scale, jobs=jobs
    )
    sweep_s = time.perf_counter() - t0

    result = fed.federation_scaling(routed, broadcast)
    save_result(result)

    lo, hi = counts[0], counts[-1]
    broker_growth = hi / lo
    routed_growth = routed[hi].per_link_mean / routed[lo].per_link_mean
    bcast_growth = broadcast[hi].per_link_mean / broadcast[lo].per_link_mean
    federation_report["federation"] = {
        "scale": run_scale.name,
        "broker_counts": list(counts),
        "fanout": fed.FANOUT,
        "sweep_wall_clock_s": sweep_s,
        "points": {
            str(n): {
                "routed": _leg_entry(routed[n]),
                "broadcast": _leg_entry(broadcast[n]),
            }
            for n in counts
        },
        "broker_growth": broker_growth,
        "routed_per_link_growth": routed_growth,
        "broadcast_per_link_growth": bcast_growth,
    }

    # shape gates (machine-independent)
    assert routed_growth < bcast_growth, (
        f"routed per-link traffic grew x{routed_growth:.2f} vs broadcast "
        f"x{bcast_growth:.2f}: topic-aware routing lost its headline"
    )
    # broadcast floods every link: growth tracks broker count ~linearly
    assert bcast_growth == pytest.approx(broker_growth, rel=0.15)
    # routed stays sub-linear: well under half the broadcast slope
    assert routed_growth < 0.75 * bcast_growth
    for n in counts:
        assert routed[n].loss_rate == 0.0, (
            f"routed leg lost messages at {n} brokers"
        )
        assert routed[n].per_link_mean < broadcast[n].per_link_mean
